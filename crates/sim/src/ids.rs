//! Strongly-typed identifiers used throughout the simulation.
//!
//! Every entity in the platform substrate (accounts, media, autonomous
//! systems, services) is referred to by a small copyable id newtype. Using
//! distinct types prevents the classic "passed a media id where an account id
//! was expected" bug at compile time, and keeps all cross-crate interfaces
//! cheap to copy.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index of this id (useful for arena indexing).
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a platform account (an "Instagram user" in the paper).
    AccountId
);
id_type!(
    /// Identifier of a piece of media (a photo/video posted by an account).
    MediaId
);
id_type!(
    /// Identifier of an autonomous system in the synthetic internet model.
    AsnId
);

/// Identifier of one of the studied account-automation services.
///
/// The set of services is closed (the paper studies exactly five), so this is
/// an enum rather than a numeric id; it lives here because the *platform*
/// attributes activity to services in its ground-truth ledger, even though
/// service behaviour itself is implemented in `footsteps-aas`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceId {
    /// Instalex — reciprocity abuse, franchise of the same parent as Instazood.
    Instalex,
    /// Instazood — reciprocity abuse, franchise of the same parent as Instalex.
    Instazood,
    /// Boostgram — reciprocity abuse.
    Boostgram,
    /// Hublaagram — collusion network.
    Hublaagram,
    /// Followersgratis — collusion network (small IP pool, well-policed).
    Followersgratis,
}

impl ServiceId {
    /// All five studied services, in the paper's presentation order.
    pub const ALL: [ServiceId; 5] = [
        ServiceId::Instalex,
        ServiceId::Instazood,
        ServiceId::Boostgram,
        ServiceId::Hublaagram,
        ServiceId::Followersgratis,
    ];

    /// The three reciprocity-abuse services.
    pub const RECIPROCITY: [ServiceId; 3] = [
        ServiceId::Instalex,
        ServiceId::Instazood,
        ServiceId::Boostgram,
    ];

    /// The two collusion-network services.
    pub const COLLUSION: [ServiceId; 2] = [ServiceId::Hublaagram, ServiceId::Followersgratis];

    /// Human-readable service name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ServiceId::Instalex => "Instalex",
            ServiceId::Instazood => "Instazood",
            ServiceId::Boostgram => "Boostgram",
            ServiceId::Hublaagram => "Hublaagram",
            ServiceId::Followersgratis => "Followersgratis",
        }
    }

    /// Lowercase identifier for metric keys (`actions.instalex.follow`).
    pub fn slug(self) -> &'static str {
        match self {
            ServiceId::Instalex => "instalex",
            ServiceId::Instazood => "instazood",
            ServiceId::Boostgram => "boostgram",
            ServiceId::Hublaagram => "hublaagram",
            ServiceId::Followersgratis => "followersgratis",
        }
    }

    /// `true` if the service uses the reciprocity-abuse technique (§3.1).
    pub fn is_reciprocity(self) -> bool {
        matches!(
            self,
            ServiceId::Instalex | ServiceId::Instazood | ServiceId::Boostgram
        )
    }

    /// `true` if the service runs a collusion network (§3.2).
    pub fn is_collusion(self) -> bool {
        !self.is_reciprocity()
    }

    /// Stable small index (0..5) for array-indexed per-service state.
    pub fn index(self) -> usize {
        match self {
            ServiceId::Instalex => 0,
            ServiceId::Instazood => 1,
            ServiceId::Boostgram => 2,
            ServiceId::Hublaagram => 3,
            ServiceId::Followersgratis => 4,
        }
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A "franchise group": Instalex and Instazood are independently operated
/// franchisees of the same parent organisation. §5 of the paper combines
/// their activity as **Insta\*** because individual franchises cannot be
/// distinguished from the platform's vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceGroup {
    /// Instalex + Instazood combined.
    InstaStar,
    /// Boostgram alone.
    Boostgram,
    /// Hublaagram alone.
    Hublaagram,
    /// Followersgratis alone (excluded from most of §5 in the paper).
    Followersgratis,
}

impl ServiceGroup {
    /// Groups analysed in the business sections of the paper (§5), which
    /// exclude Followersgratis.
    pub const BUSINESS: [ServiceGroup; 3] = [
        ServiceGroup::InstaStar,
        ServiceGroup::Boostgram,
        ServiceGroup::Hublaagram,
    ];

    /// Map a concrete service to its analysis group.
    pub fn of(service: ServiceId) -> Self {
        match service {
            ServiceId::Instalex | ServiceId::Instazood => ServiceGroup::InstaStar,
            ServiceId::Boostgram => ServiceGroup::Boostgram,
            ServiceId::Hublaagram => ServiceGroup::Hublaagram,
            ServiceId::Followersgratis => ServiceGroup::Followersgratis,
        }
    }

    /// Display name matching the paper's tables ("Insta*").
    pub fn name(self) -> &'static str {
        match self {
            ServiceGroup::InstaStar => "Insta*",
            ServiceGroup::Boostgram => "Boostgram",
            ServiceGroup::Hublaagram => "Hublaagram",
            ServiceGroup::Followersgratis => "Followersgratis",
        }
    }

    /// Member services of this group.
    pub fn members(self) -> &'static [ServiceId] {
        match self {
            ServiceGroup::InstaStar => &[ServiceId::Instalex, ServiceId::Instazood],
            ServiceGroup::Boostgram => &[ServiceId::Boostgram],
            ServiceGroup::Hublaagram => &[ServiceId::Hublaagram],
            ServiceGroup::Followersgratis => &[ServiceId::Followersgratis],
        }
    }
}

impl std::fmt::Display for ServiceGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let a = AccountId::from(42);
        assert_eq!(a.index(), 42);
        assert_eq!(a.to_string(), "AccountId(42)");
        assert_eq!(AccountId(42), a);
    }

    #[test]
    fn service_partition_is_complete_and_disjoint() {
        for s in ServiceId::ALL {
            assert_ne!(s.is_reciprocity(), s.is_collusion());
        }
        assert_eq!(
            ServiceId::RECIPROCITY.len() + ServiceId::COLLUSION.len(),
            ServiceId::ALL.len()
        );
    }

    #[test]
    fn service_indexes_are_unique() {
        let mut seen = [false; 5];
        for s in ServiceId::ALL {
            assert!(!seen[s.index()], "duplicate index for {s}");
            seen[s.index()] = true;
        }
    }

    #[test]
    fn franchise_grouping_combines_instalex_and_instazood() {
        assert_eq!(ServiceGroup::of(ServiceId::Instalex), ServiceGroup::InstaStar);
        assert_eq!(ServiceGroup::of(ServiceId::Instazood), ServiceGroup::InstaStar);
        assert_eq!(ServiceGroup::InstaStar.members().len(), 2);
        assert_eq!(ServiceGroup::InstaStar.name(), "Insta*");
    }

    #[test]
    fn business_groups_exclude_followersgratis() {
        assert!(!ServiceGroup::BUSINESS.contains(&ServiceGroup::Followersgratis));
        assert_eq!(ServiceGroup::BUSINESS.len(), 3);
    }
}
