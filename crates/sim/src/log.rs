//! The platform action log.
//!
//! Everything the paper measures is a query over this log: per-account daily
//! action counts (thresholds, §6.2), per-ASN activity (attribution, Table 7),
//! inbound-only accounts (Hublaagram's no-outbound fee, §5.2), per-photo
//! hourly like rates (paid-customer identification, §5.2), and per-event
//! streams for honeypots (§4).
//!
//! Per the two-speed design, bulk activity is stored as **daily aggregates**
//! and full [`ActionEvent`]s are retained only for accounts registered as
//! *event-tracked*.
//!
//! ## Storage layout
//!
//! Aggregates live in flat record vectors, not hash maps. The day currently
//! being written (the *open* day) carries a transient per-account chain
//! index — `heads[account] → first record, next[record] → same-account
//! record` — so the per-action path (upsert + the countermeasures'
//! `prior_today` lookup) walks a one-or-two-entry chain instead of hashing
//! or scanning. When the log advances to a later day, the previous day is
//! *sealed*: records are sorted by key, the chain index is dropped, and all
//! queries switch to binary search over the sorted vector. Iteration order
//! is therefore deterministic in both states — insertion order while open,
//! key order once sealed.

use crate::actions::{ActionEvent, ActionOutcome, ActionType, TypeCounts};
use crate::fingerprint::ClientFingerprint;
use crate::ids::{AccountId, AsnId, MediaId};
use crate::time::Day;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::BTreeMap;

/// Key of an outbound aggregate record: who acted, from which network, with
/// which client software. The fingerprint is part of the key because the
/// platform's abuse signals combine ASN and client fingerprint (§5) — a
/// mixed ASN hosting both organic app traffic and a service's spoofed
/// private-API traffic must keep the two distinguishable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct OutboundKey {
    /// Acting account.
    pub account: AccountId,
    /// Source ASN.
    pub asn: AsnId,
    /// Client fingerprint of the submitting software.
    pub fingerprint: ClientFingerprint,
}

/// Source of an inbound aggregate record: the ASN the actions came from, or
/// `None` for diffuse organic sources (aggregate reciprocation has no single
/// origin network).
pub type InboundSource = Option<AsnId>;

/// Like-delivery statistics for one photo on one day.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhotoDayLikes {
    /// Total likes delivered to the photo this day.
    pub total: u32,
    /// The largest number of likes delivered within any single hour of the
    /// day. Hublaagram's free tier is capped at 160 likes/hour, so paid
    /// deliveries are identified by exceeding that rate (§5.2).
    pub max_hourly: u32,
}

impl PhotoDayLikes {
    /// Fold a delivery burst of `total` likes with peak hourly rate
    /// `max_hourly` into the day's stats.
    pub fn add_burst(&mut self, total: u32, max_hourly: u32) {
        self.total += total;
        self.max_hourly = self.max_hourly.max(max_hourly);
    }
}

/// Sentinel for "no chain entry" in the open-day index.
const NONE: u32 = u32::MAX;

/// Transient per-account chain index for the day currently being written.
/// `out_heads[account]` is the index of the account's most recent outbound
/// record; `out_next[i]` links record `i` to the account's previous record.
#[derive(Debug, Clone, Default)]
struct OpenIndex {
    out_heads: Vec<u32>,
    out_next: Vec<u32>,
    in_heads: Vec<u32>,
    in_next: Vec<u32>,
}

impl OpenIndex {
    /// Rebuild chains from existing records (reopening a sealed day).
    fn rebuild(out: &[(OutboundKey, TypeCounts)], inb: &[(InboundKey, TypeCounts)]) -> Self {
        let mut idx = OpenIndex::default();
        for (i, (k, _)) in out.iter().enumerate() {
            idx.out_next.push(take_head(&mut idx.out_heads, k.account, i as u32));
        }
        for (i, ((a, _), _)) in inb.iter().enumerate() {
            idx.in_next.push(take_head(&mut idx.in_heads, *a, i as u32));
        }
        idx
    }
}

/// Swap `heads[account]` to `new`, returning the previous head.
fn take_head(heads: &mut Vec<u32>, account: AccountId, new: u32) -> u32 {
    let i = account.index();
    if i >= heads.len() {
        heads.resize(i + 1, NONE);
    }
    std::mem::replace(&mut heads[i], new)
}

fn head_of(heads: &[u32], account: AccountId) -> u32 {
    heads.get(account.index()).copied().unwrap_or(NONE)
}

type InboundKey = (AccountId, InboundSource);

/// Aggregated activity for a single day.
#[derive(Debug, Clone, Default)]
pub struct DayLog {
    /// Outbound records: insertion order while open, key order once sealed.
    out_records: Vec<(OutboundKey, TypeCounts)>,
    /// Inbound records, same ordering contract.
    in_records: Vec<(InboundKey, TypeCounts)>,
    /// Per-photo like-delivery stats for tracked photos. Low write volume
    /// (one entry per delivery burst), so an ordered map keeps iteration
    /// deterministic at no per-action cost.
    pub photo_likes: BTreeMap<MediaId, PhotoDayLikes>,
    /// Full events for event-tracked accounts.
    pub events: Vec<ActionEvent>,
    /// Chain index while this day is the open (written) day.
    open: Option<Box<OpenIndex>>,
}

impl DayLog {
    /// Iterate `(key, counts)` over this day's outbound records.
    pub fn outbound(&self) -> impl Iterator<Item = (&OutboundKey, &TypeCounts)> {
        self.out_records.iter().map(|(k, c)| (k, c))
    }

    /// Iterate `(key, counts)` over this day's inbound records.
    pub fn inbound(&self) -> impl Iterator<Item = (&InboundKey, &TypeCounts)> {
        self.in_records.iter().map(|(k, c)| (k, c))
    }

    /// Number of distinct outbound `(account, asn, fingerprint)` records.
    pub fn outbound_len(&self) -> usize {
        self.out_records.len()
    }

    /// Total outbound actions of `ty` attempted by `account` across all ASNs.
    pub fn outbound_attempted(&self, account: AccountId, ty: ActionType) -> u32 {
        let mut total = 0;
        self.for_outbound_of(account, |k, c| {
            let _ = k;
            total += c.attempted_of(ty);
        });
        total
    }

    /// Merged outbound counters for `(account, asn)` across fingerprints.
    /// Returns `None` if nothing was recorded.
    pub fn outbound_at(&self, account: AccountId, asn: AsnId) -> Option<TypeCounts> {
        let mut total = TypeCounts::default();
        let mut any = false;
        self.for_outbound_of(account, |k, c| {
            if k.asn == asn {
                total.merge(c);
                any = true;
            }
        });
        any.then_some(total)
    }

    /// Merged inbound counters for an account across all sources.
    pub fn inbound_of(&self, account: AccountId) -> Option<TypeCounts> {
        let mut total = TypeCounts::default();
        let mut any = false;
        self.for_inbound_of(account, |_, c| {
            total.merge(c);
            any = true;
        });
        any.then_some(total)
    }

    /// Inbound counters for an account restricted to one source ASN.
    pub fn inbound_from(&self, account: AccountId, asn: AsnId) -> Option<&TypeCounts> {
        let key = (account, Some(asn));
        match &self.open {
            Some(idx) => {
                let mut at = head_of(&idx.in_heads, account);
                while at != NONE {
                    let (k, c) = &self.in_records[at as usize];
                    if *k == key {
                        return Some(c);
                    }
                    at = idx.in_next[at as usize];
                }
                None
            }
            None => self
                .in_records
                .binary_search_by(|(k, _)| k.cmp(&key))
                .ok()
                .map(|i| &self.in_records[i].1),
        }
    }

    /// Visit every outbound record of `account` (chain walk while open,
    /// binary-searched key range once sealed).
    fn for_outbound_of(&self, account: AccountId, mut f: impl FnMut(&OutboundKey, &TypeCounts)) {
        match &self.open {
            Some(idx) => {
                let mut at = head_of(&idx.out_heads, account);
                while at != NONE {
                    let (k, c) = &self.out_records[at as usize];
                    f(k, c);
                    at = idx.out_next[at as usize];
                }
            }
            None => {
                let lo = self
                    .out_records
                    .partition_point(|(k, _)| k.account < account);
                for (k, c) in &self.out_records[lo..] {
                    if k.account != account {
                        break;
                    }
                    f(k, c);
                }
            }
        }
    }

    /// Visit every inbound record of `account`.
    fn for_inbound_of(&self, account: AccountId, mut f: impl FnMut(&InboundKey, &TypeCounts)) {
        match &self.open {
            Some(idx) => {
                let mut at = head_of(&idx.in_heads, account);
                while at != NONE {
                    let (k, c) = &self.in_records[at as usize];
                    f(k, c);
                    at = idx.in_next[at as usize];
                }
            }
            None => {
                let lo = self.in_records.partition_point(|((a, _), _)| *a < account);
                for (k, c) in &self.in_records[lo..] {
                    if k.0 != account {
                        break;
                    }
                    f(k, c);
                }
            }
        }
    }

    /// Upsert an outbound record.
    fn add_outbound(&mut self, key: OutboundKey, ty: ActionType, outcome: ActionOutcome, n: u32) {
        match &mut self.open {
            Some(idx) => {
                let mut at = head_of(&idx.out_heads, key.account);
                while at != NONE {
                    let (k, c) = &mut self.out_records[at as usize];
                    if *k == key {
                        c.record(ty, outcome, n);
                        return;
                    }
                    at = idx.out_next[at as usize];
                }
                let i = self.out_records.len() as u32;
                self.out_records.push((key, TypeCounts::default()));
                self.out_records[i as usize].1.record(ty, outcome, n);
                idx.out_next.push(take_head(&mut idx.out_heads, key.account, i));
            }
            // Sealed day (a write going backwards in time — cold path, used
            // only by tests and out-of-order bookkeeping): sorted upsert.
            None => match self.out_records.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => self.out_records[i].1.record(ty, outcome, n),
                Err(i) => {
                    let mut c = TypeCounts::default();
                    c.record(ty, outcome, n);
                    self.out_records.insert(i, (key, c));
                }
            },
        }
    }

    /// Upsert an inbound record.
    fn add_inbound(&mut self, key: InboundKey, ty: ActionType, outcome: ActionOutcome, n: u32) {
        match &mut self.open {
            Some(idx) => {
                let mut at = head_of(&idx.in_heads, key.0);
                while at != NONE {
                    let (k, c) = &mut self.in_records[at as usize];
                    if *k == key {
                        c.record(ty, outcome, n);
                        return;
                    }
                    at = idx.in_next[at as usize];
                }
                let i = self.in_records.len() as u32;
                self.in_records.push((key, TypeCounts::default()));
                self.in_records[i as usize].1.record(ty, outcome, n);
                idx.in_next.push(take_head(&mut idx.in_heads, key.0, i));
            }
            None => match self.in_records.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => self.in_records[i].1.record(ty, outcome, n),
                Err(i) => {
                    let mut c = TypeCounts::default();
                    c.record(ty, outcome, n);
                    self.in_records.insert(i, (key, c));
                }
            },
        }
    }

    /// Merge a whole counter set into the record for `key` (the sharded
    /// apply phase's log-segment merge: each shard returns per-key
    /// [`TypeCounts`] deltas, and the serial sweep folds them in here in
    /// global first-touch order, reproducing the open-day insertion order
    /// the serial ladder would have produced).
    pub(crate) fn merge_inbound(&mut self, key: InboundKey, counts: &TypeCounts) {
        match &mut self.open {
            Some(idx) => {
                let mut at = head_of(&idx.in_heads, key.0);
                while at != NONE {
                    let (k, c) = &mut self.in_records[at as usize];
                    if *k == key {
                        c.merge(counts);
                        return;
                    }
                    at = idx.in_next[at as usize];
                }
                let i = self.in_records.len() as u32;
                self.in_records.push((key, *counts));
                idx.in_next.push(take_head(&mut idx.in_heads, key.0, i));
            }
            None => match self.in_records.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => self.in_records[i].1.merge(counts),
                Err(i) => self.in_records.insert(i, (key, *counts)),
            },
        }
    }

    /// Sort records by key and drop the chain index. Idempotent.
    fn seal(&mut self) {
        if self.open.take().is_some() {
            self.out_records.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
            self.in_records.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        }
    }

    /// Whether this day currently carries the open-day chain index.
    fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// Install (or rebuild) the chain index so this day accepts O(1) writes.
    fn open_for_writes(&mut self) {
        if self.open.is_none() {
            self.open = Some(Box::new(OpenIndex::rebuild(
                &self.out_records,
                &self.in_records,
            )));
        }
    }
}

impl Serialize for DayLog {
    fn to_value(&self) -> Value {
        // Serialize sorted copies so the output is identical whether the day
        // was sealed or still open.
        let mut out = self.out_records.clone();
        out.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        let mut inb = self.in_records.clone();
        inb.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(vec![
            (Value::Str("outbound".into()), out.to_value()),
            (Value::Str("inbound".into()), inb.to_value()),
            (Value::Str("photo_likes".into()), self.photo_likes.to_value()),
            (Value::Str("events".into()), self.events.to_value()),
        ])
    }
}

impl Deserialize for DayLog {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| Error::custom(format!("DayLog missing field `{name}`")))
        };
        Ok(DayLog {
            out_records: Deserialize::from_value(field("outbound")?)?,
            in_records: Deserialize::from_value(field("inbound")?)?,
            photo_likes: Deserialize::from_value(field("photo_likes")?)?,
            events: Deserialize::from_value(field("events")?)?,
            open: None,
        })
    }
}

/// The append-only platform log, indexed by day.
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    days: Vec<DayLog>,
    /// Index of the open (chain-indexed) day; days below it are sealed.
    open_idx: usize,
    /// `tracked[account]`: full per-action events are retained. Dense, so
    /// the per-event check costs one bounds-checked load.
    event_tracked: Vec<bool>,
}

impl ActionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an account for event-level retention. Events involving the
    /// account (as actor or target) from now on are stored verbatim.
    pub fn track_events_for(&mut self, id: AccountId) {
        let i = id.index();
        if i >= self.event_tracked.len() {
            self.event_tracked.resize(i + 1, false);
        }
        self.event_tracked[i] = true;
    }

    /// Whether events for this account are retained.
    pub fn is_event_tracked(&self, id: AccountId) -> bool {
        self.event_tracked.get(id.index()).copied().unwrap_or(false)
    }

    /// Mutable day record, growing the log as needed. Advancing to a later
    /// day seals every earlier day (sorts its records, drops its chain
    /// index); writes to an already-sealed day fall back to sorted upserts.
    pub fn day_mut(&mut self, day: Day) -> &mut DayLog {
        let idx = day.0 as usize;
        if idx >= self.days.len() {
            self.days.resize_with(idx + 1, DayLog::default);
        }
        if idx >= self.open_idx {
            if idx > self.open_idx {
                for d in &mut self.days[self.open_idx..idx] {
                    d.seal();
                }
                self.open_idx = idx;
            }
            if !self.days[idx].is_open() {
                self.days[idx].open_for_writes();
            }
        }
        &mut self.days[idx]
    }

    /// Day record, if the day is within the log's range.
    pub fn day(&self, day: Day) -> Option<&DayLog> {
        self.days.get(day.0 as usize)
    }

    /// Number of days with (potential) records, i.e. one past the last
    /// recorded day.
    pub fn horizon(&self) -> Day {
        Day(self.days.len() as u32)
    }

    /// Iterate `(day, record)` over all recorded days.
    pub fn iter_days(&self) -> impl Iterator<Item = (Day, &DayLog)> {
        self.days.iter().enumerate().map(|(i, d)| (Day(i as u32), d))
    }

    /// Iterate `(day, record)` over `[start, end)` intersected with the log.
    pub fn iter_range(&self, start: Day, end: Day) -> impl Iterator<Item = (Day, &DayLog)> {
        let lo = start.0 as usize;
        let hi = (end.0 as usize).min(self.days.len());
        self.days[lo.min(hi)..hi]
            .iter()
            .enumerate()
            .map(move |(i, d)| (Day((lo + i) as u32), d))
    }

    /// Record `n` outbound actions for `(actor, asn, fingerprint)` on `day`.
    #[allow(clippy::too_many_arguments)]
    pub fn record_outbound(
        &mut self,
        day: Day,
        actor: AccountId,
        asn: AsnId,
        fingerprint: ClientFingerprint,
        ty: ActionType,
        outcome: ActionOutcome,
        n: u32,
    ) {
        if n == 0 {
            return;
        }
        self.day_mut(day)
            .add_outbound(OutboundKey { account: actor, asn, fingerprint }, ty, outcome, n);
    }

    /// Record `n` delivered inbound actions landing on `target` on `day`
    /// from `source` (`None` = diffuse organic sources).
    pub fn record_inbound(
        &mut self,
        day: Day,
        target: AccountId,
        source: InboundSource,
        ty: ActionType,
        n: u32,
    ) {
        self.record_inbound_with(day, target, source, ty, ActionOutcome::Delivered, n);
    }

    /// Record `n` inbound actions directed at `target` with an explicit
    /// outcome. Collusion-network deliveries use this to account for
    /// inbound-side countermeasures (blocked deliveries never land but are
    /// still part of the measured demand, Figure 6).
    pub fn record_inbound_with(
        &mut self,
        day: Day,
        target: AccountId,
        source: InboundSource,
        ty: ActionType,
        outcome: ActionOutcome,
        n: u32,
    ) {
        if n == 0 {
            return;
        }
        self.day_mut(day).add_inbound((target, source), ty, outcome, n);
    }

    /// Record a like-delivery burst onto a photo.
    pub fn record_photo_likes(&mut self, day: Day, media: MediaId, total: u32, max_hourly: u32) {
        if total == 0 {
            return;
        }
        self.day_mut(day)
            .photo_likes
            .entry(media)
            .or_default()
            .add_burst(total, max_hourly);
    }

    /// Append a full event if either endpoint is event-tracked; returns
    /// whether it was retained. (Aggregates must be recorded separately —
    /// the log does not double-count on your behalf.)
    pub fn push_event(&mut self, ev: ActionEvent) -> bool {
        let target_tracked = ev
            .target
            .account()
            .is_some_and(|t| self.is_event_tracked(t));
        if self.is_event_tracked(ev.actor) || target_tracked {
            let day = ev.at.day();
            self.day_mut(day).events.push(ev);
            true
        } else {
            false
        }
    }

    /// All retained events in `[start, end)` for which `pred` holds.
    pub fn events_in<'a>(
        &'a self,
        start: Day,
        end: Day,
        mut pred: impl FnMut(&ActionEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a ActionEvent> {
        self.iter_range(start, end)
            .flat_map(|(_, d)| d.events.iter())
            .filter(move |e| pred(e))
    }

    /// Sum of outbound attempted actions of `ty` by `actor` over `[start, end)`.
    pub fn total_outbound(&self, actor: AccountId, ty: ActionType, start: Day, end: Day) -> u64 {
        self.iter_range(start, end)
            .map(|(_, d)| u64::from(d.outbound_attempted(actor, ty)))
            .sum()
    }

    /// Sum of delivered inbound actions of `ty` to `target` over `[start, end)`.
    pub fn total_inbound(&self, target: AccountId, ty: ActionType, start: Day, end: Day) -> u64 {
        self.iter_range(start, end)
            .filter_map(|(_, d)| d.inbound_of(target))
            .map(|c| u64::from(c.delivered[ty.index()]))
            .sum()
    }

    /// Sum of delivered inbound actions of `ty` to `target` from a specific
    /// source ASN over `[start, end)`.
    pub fn total_inbound_from(
        &self,
        target: AccountId,
        asn: AsnId,
        ty: ActionType,
        start: Day,
        end: Day,
    ) -> u64 {
        self.iter_range(start, end)
            .filter_map(|(_, d)| d.inbound_from(target, asn))
            .map(|c| u64::from(c.delivered[ty.index()]))
            .sum()
    }
}

impl Serialize for ActionLog {
    fn to_value(&self) -> Value {
        let tracked: Vec<AccountId> = self
            .event_tracked
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| AccountId(i as u32))
            .collect();
        Value::Map(vec![
            (Value::Str("days".into()), self.days.to_value()),
            (Value::Str("event_tracked".into()), tracked.to_value()),
        ])
    }
}

impl Deserialize for ActionLog {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| Error::custom(format!("ActionLog missing field `{name}`")))
        };
        let days: Vec<DayLog> = Deserialize::from_value(field("days")?)?;
        let tracked: Vec<AccountId> = Deserialize::from_value(field("event_tracked")?)?;
        let mut log = ActionLog {
            open_idx: days.len().saturating_sub(1),
            days,
            event_tracked: Vec::new(),
        };
        for id in tracked {
            log.track_events_for(id);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionTarget;
    use crate::fingerprint::ClientFingerprint;
    use crate::net::IpAddr4;

    fn ev(actor: u32, target: u32, day: u32) -> ActionEvent {
        ActionEvent {
            at: Day(day).start().plus_hours(1),
            actor: AccountId(actor),
            action: ActionType::Follow,
            target: ActionTarget::Account(AccountId(target)),
            ip: IpAddr4(1),
            asn: AsnId(0),
            fingerprint: ClientFingerprint::OfficialApp,
            outcome: ActionOutcome::Delivered,
        }
    }

    #[test]
    fn outbound_aggregation_by_asn_and_fingerprint() {
        let mut log = ActionLog::new();
        let a = AccountId(1);
        let app = ClientFingerprint::OfficialApp;
        let spoof = ClientFingerprint::SpoofedMobile { variant: 1 };
        log.record_outbound(Day(0), a, AsnId(0), app, ActionType::Like, ActionOutcome::Delivered, 5);
        log.record_outbound(Day(0), a, AsnId(1), spoof, ActionType::Like, ActionOutcome::Blocked, 3);
        log.record_outbound(Day(0), a, AsnId(1), app, ActionType::Like, ActionOutcome::Delivered, 2);
        let d = log.day(Day(0)).unwrap();
        assert_eq!(d.outbound_attempted(a, ActionType::Like), 10);
        // Merged across fingerprints at one ASN.
        let at1 = d.outbound_at(a, AsnId(1)).unwrap();
        assert_eq!(at1.blocked_of(ActionType::Like), 3);
        assert_eq!(at1.attempted_of(ActionType::Like), 5);
        // Fingerprints remain distinguishable in the raw records.
        assert_eq!(d.outbound_len(), 3);
        assert_eq!(log.total_outbound(a, ActionType::Like, Day(0), Day(1)), 10);
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut log = ActionLog::new();
        log.record_outbound(
            Day(0),
            AccountId(1),
            AsnId(0),
            ClientFingerprint::OfficialApp,
            ActionType::Like,
            ActionOutcome::Delivered,
            0,
        );
        log.record_inbound(Day(0), AccountId(1), None, ActionType::Like, 0);
        assert!(log.day(Day(0)).is_none(), "no day record materialised");
    }

    #[test]
    fn inbound_totals_over_range_and_sources() {
        let mut log = ActionLog::new();
        let t = AccountId(9);
        log.record_inbound(Day(1), t, None, ActionType::Follow, 2);
        log.record_inbound(Day(3), t, Some(AsnId(7)), ActionType::Follow, 5);
        assert_eq!(log.total_inbound(t, ActionType::Follow, Day(0), Day(3)), 2);
        assert_eq!(log.total_inbound(t, ActionType::Follow, Day(0), Day(10)), 7);
        assert_eq!(
            log.total_inbound_from(t, AsnId(7), ActionType::Follow, Day(0), Day(10)),
            5
        );
        assert_eq!(
            log.total_inbound_from(t, AsnId(8), ActionType::Follow, Day(0), Day(10)),
            0
        );
    }

    #[test]
    fn photo_like_bursts_track_peak_hourly() {
        let mut log = ActionLog::new();
        let m = MediaId(4);
        log.record_photo_likes(Day(2), m, 300, 150);
        log.record_photo_likes(Day(2), m, 400, 200);
        let p = log.day(Day(2)).unwrap().photo_likes[&m];
        assert_eq!(p.total, 700);
        assert_eq!(p.max_hourly, 200);
    }

    #[test]
    fn events_retained_only_for_tracked_accounts() {
        let mut log = ActionLog::new();
        log.track_events_for(AccountId(7));
        assert!(!log.push_event(ev(1, 2, 0)), "untracked dropped");
        assert!(log.push_event(ev(7, 2, 0)), "tracked actor kept");
        assert!(log.push_event(ev(3, 7, 1)), "tracked target kept");
        let n = log.events_in(Day(0), Day(2), |_| true).count();
        assert_eq!(n, 2);
        let n0 = log.events_in(Day(0), Day(1), |_| true).count();
        assert_eq!(n0, 1);
    }

    #[test]
    fn iter_range_clamps_to_log() {
        let mut log = ActionLog::new();
        log.record_inbound(Day(0), AccountId(0), None, ActionType::Like, 1);
        let collected: Vec<Day> = log.iter_range(Day(0), Day(100)).map(|(d, _)| d).collect();
        assert_eq!(collected, vec![Day(0)]);
        assert_eq!(log.iter_range(Day(5), Day(2)).count(), 0);
    }

    #[test]
    fn horizon_grows_with_day_mut() {
        let mut log = ActionLog::new();
        assert_eq!(log.horizon(), Day(0));
        log.day_mut(Day(4));
        assert_eq!(log.horizon(), Day(5));
    }

    #[test]
    fn sealed_days_answer_the_same_queries_as_open_ones() {
        let mut log = ActionLog::new();
        let a = AccountId(3);
        let b = AccountId(5);
        let fp = ClientFingerprint::SpoofedMobile { variant: 2 };
        // Interleave writers so the open-day chains are non-trivial.
        for i in 0..10u32 {
            let who = if i % 2 == 0 { a } else { b };
            let asn = AsnId(i % 3);
            log.record_outbound(Day(0), who, asn, fp, ActionType::Follow, ActionOutcome::Delivered, i + 1);
            log.record_inbound(Day(0), who, Some(asn), ActionType::Like, i + 1);
        }
        let open_att = log.day(Day(0)).unwrap().outbound_attempted(a, ActionType::Follow);
        let open_at = log.day(Day(0)).unwrap().outbound_at(a, AsnId(0));
        let open_in = log.day(Day(0)).unwrap().inbound_of(b);
        assert!(log.day(Day(0)).unwrap().is_open());
        // Advancing the log seals day 0.
        log.record_outbound(Day(1), a, AsnId(0), fp, ActionType::Like, ActionOutcome::Delivered, 1);
        let d0 = log.day(Day(0)).unwrap();
        assert!(!d0.is_open());
        assert_eq!(d0.outbound_attempted(a, ActionType::Follow), open_att);
        assert_eq!(d0.outbound_at(a, AsnId(0)), open_at);
        assert_eq!(d0.inbound_of(b), open_in);
        // Sealed records are in key order.
        let keys: Vec<OutboundKey> = d0.outbound().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn writes_to_sealed_days_upsert_in_key_order() {
        let mut log = ActionLog::new();
        let fp = ClientFingerprint::OfficialApp;
        log.record_outbound(Day(5), AccountId(1), AsnId(0), fp, ActionType::Like, ActionOutcome::Delivered, 1);
        // Day 2 is behind the open day — sealed (and empty) from the start.
        log.record_outbound(Day(2), AccountId(9), AsnId(0), fp, ActionType::Like, ActionOutcome::Delivered, 4);
        log.record_outbound(Day(2), AccountId(4), AsnId(0), fp, ActionType::Like, ActionOutcome::Delivered, 2);
        log.record_outbound(Day(2), AccountId(9), AsnId(0), fp, ActionType::Like, ActionOutcome::Delivered, 1);
        let d2 = log.day(Day(2)).unwrap();
        assert_eq!(d2.outbound_attempted(AccountId(9), ActionType::Like), 5);
        assert_eq!(d2.outbound_attempted(AccountId(4), ActionType::Like), 2);
        let accounts: Vec<u32> = d2.outbound().map(|(k, _)| k.account.0).collect();
        assert_eq!(accounts, vec![4, 9]);
    }

    #[test]
    fn day_log_serializes_identically_open_or_sealed() {
        let mut a = ActionLog::new();
        let mut b = ActionLog::new();
        let fp = ClientFingerprint::SpoofedMobile { variant: 1 };
        for log in [&mut a, &mut b] {
            for i in (0..6u32).rev() {
                log.record_outbound(
                    Day(0),
                    AccountId(i),
                    AsnId(0),
                    fp,
                    ActionType::Follow,
                    ActionOutcome::Delivered,
                    i + 1,
                );
            }
        }
        // Seal `b`'s day 0 by advancing; leave `a`'s open.
        b.record_outbound(Day(1), AccountId(0), AsnId(0), fp, ActionType::Like, ActionOutcome::Delivered, 1);
        let ser_a = serde_json::to_string(&a.day(Day(0)).unwrap()).unwrap();
        let ser_b = serde_json::to_string(&b.day(Day(0)).unwrap()).unwrap();
        assert_eq!(ser_a, ser_b);
        // And the round trip preserves queries.
        let back: DayLog = serde_json::from_str(&ser_a).unwrap();
        assert_eq!(
            back.outbound_attempted(AccountId(3), ActionType::Follow),
            4
        );
    }
}
