//! The platform action log.
//!
//! Everything the paper measures is a query over this log: per-account daily
//! action counts (thresholds, §6.2), per-ASN activity (attribution, Table 7),
//! inbound-only accounts (Hublaagram's no-outbound fee, §5.2), per-photo
//! hourly like rates (paid-customer identification, §5.2), and per-event
//! streams for honeypots (§4).
//!
//! Per the two-speed design, bulk activity is stored as **daily aggregates**
//! and full [`ActionEvent`]s are retained only for accounts registered as
//! *event-tracked*.

use crate::actions::{ActionEvent, ActionOutcome, ActionType, TypeCounts};
use crate::fingerprint::ClientFingerprint;
use crate::ids::{AccountId, AsnId, MediaId};
use crate::time::Day;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Key of an outbound aggregate record: who acted, from which network, with
/// which client software. The fingerprint is part of the key because the
/// platform's abuse signals combine ASN and client fingerprint (§5) — a
/// mixed ASN hosting both organic app traffic and a service's spoofed
/// private-API traffic must keep the two distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OutboundKey {
    /// Acting account.
    pub account: AccountId,
    /// Source ASN.
    pub asn: AsnId,
    /// Client fingerprint of the submitting software.
    pub fingerprint: ClientFingerprint,
}

/// Source of an inbound aggregate record: the ASN the actions came from, or
/// `None` for diffuse organic sources (aggregate reciprocation has no single
/// origin network).
pub type InboundSource = Option<AsnId>;

/// Like-delivery statistics for one photo on one day.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhotoDayLikes {
    /// Total likes delivered to the photo this day.
    pub total: u32,
    /// The largest number of likes delivered within any single hour of the
    /// day. Hublaagram's free tier is capped at 160 likes/hour, so paid
    /// deliveries are identified by exceeding that rate (§5.2).
    pub max_hourly: u32,
}

impl PhotoDayLikes {
    /// Fold a delivery burst of `total` likes with peak hourly rate
    /// `max_hourly` into the day's stats.
    pub fn add_burst(&mut self, total: u32, max_hourly: u32) {
        self.total += total;
        self.max_hourly = self.max_hourly.max(max_hourly);
    }
}

/// Aggregated activity for a single day.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DayLog {
    /// Outbound activity: what each account *did*, keyed by source ASN and
    /// client fingerprint (countermeasures are per-ASN; attribution uses
    /// ASN + fingerprint).
    pub outbound: HashMap<OutboundKey, TypeCounts>,
    /// Inbound activity: what each account *received*, keyed by the source
    /// network (`None` = diffuse organic sources).
    pub inbound: HashMap<(AccountId, InboundSource), TypeCounts>,
    /// Per-photo like-delivery stats for tracked photos.
    pub photo_likes: HashMap<MediaId, PhotoDayLikes>,
    /// Full events for event-tracked accounts.
    pub events: Vec<ActionEvent>,
}

impl DayLog {
    /// Total outbound actions of `ty` attempted by `account` across all ASNs.
    pub fn outbound_attempted(&self, account: AccountId, ty: ActionType) -> u32 {
        self.outbound
            .iter()
            .filter(|(k, _)| k.account == account)
            .map(|(_, c)| c.attempted_of(ty))
            .sum()
    }

    /// Merged outbound counters for `(account, asn)` across fingerprints.
    /// Returns `None` if nothing was recorded.
    pub fn outbound_at(&self, account: AccountId, asn: AsnId) -> Option<TypeCounts> {
        let mut total = TypeCounts::default();
        let mut any = false;
        for (k, c) in &self.outbound {
            if k.account == account && k.asn == asn {
                total.merge(c);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Merged inbound counters for an account across all sources.
    pub fn inbound_of(&self, account: AccountId) -> Option<TypeCounts> {
        let mut total = TypeCounts::default();
        let mut any = false;
        for ((a, _), c) in &self.inbound {
            if *a == account {
                total.merge(c);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Inbound counters for an account restricted to one source ASN.
    pub fn inbound_from(&self, account: AccountId, asn: AsnId) -> Option<&TypeCounts> {
        self.inbound.get(&(account, Some(asn)))
    }
}

/// The append-only platform log, indexed by day.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActionLog {
    days: Vec<DayLog>,
    /// Accounts for which full per-action events are retained.
    event_tracked: HashSet<AccountId>,
}

impl ActionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an account for event-level retention. Events involving the
    /// account (as actor or target) from now on are stored verbatim.
    pub fn track_events_for(&mut self, id: AccountId) {
        self.event_tracked.insert(id);
    }

    /// Whether events for this account are retained.
    pub fn is_event_tracked(&self, id: AccountId) -> bool {
        self.event_tracked.contains(&id)
    }

    /// Mutable day record, growing the log as needed.
    pub fn day_mut(&mut self, day: Day) -> &mut DayLog {
        let idx = day.0 as usize;
        if idx >= self.days.len() {
            self.days.resize_with(idx + 1, DayLog::default);
        }
        &mut self.days[idx]
    }

    /// Day record, if the day is within the log's range.
    pub fn day(&self, day: Day) -> Option<&DayLog> {
        self.days.get(day.0 as usize)
    }

    /// Number of days with (potential) records, i.e. one past the last
    /// recorded day.
    pub fn horizon(&self) -> Day {
        Day(self.days.len() as u32)
    }

    /// Iterate `(day, record)` over all recorded days.
    pub fn iter_days(&self) -> impl Iterator<Item = (Day, &DayLog)> {
        self.days.iter().enumerate().map(|(i, d)| (Day(i as u32), d))
    }

    /// Iterate `(day, record)` over `[start, end)` intersected with the log.
    pub fn iter_range(&self, start: Day, end: Day) -> impl Iterator<Item = (Day, &DayLog)> {
        let lo = start.0 as usize;
        let hi = (end.0 as usize).min(self.days.len());
        self.days[lo.min(hi)..hi]
            .iter()
            .enumerate()
            .map(move |(i, d)| (Day((lo + i) as u32), d))
    }

    /// Record `n` outbound actions for `(actor, asn, fingerprint)` on `day`.
    #[allow(clippy::too_many_arguments)]
    pub fn record_outbound(
        &mut self,
        day: Day,
        actor: AccountId,
        asn: AsnId,
        fingerprint: ClientFingerprint,
        ty: ActionType,
        outcome: ActionOutcome,
        n: u32,
    ) {
        if n == 0 {
            return;
        }
        self.day_mut(day)
            .outbound
            .entry(OutboundKey { account: actor, asn, fingerprint })
            .or_default()
            .record(ty, outcome, n);
    }

    /// Record `n` delivered inbound actions landing on `target` on `day`
    /// from `source` (`None` = diffuse organic sources).
    pub fn record_inbound(
        &mut self,
        day: Day,
        target: AccountId,
        source: InboundSource,
        ty: ActionType,
        n: u32,
    ) {
        self.record_inbound_with(day, target, source, ty, ActionOutcome::Delivered, n);
    }

    /// Record `n` inbound actions directed at `target` with an explicit
    /// outcome. Collusion-network deliveries use this to account for
    /// inbound-side countermeasures (blocked deliveries never land but are
    /// still part of the measured demand, Figure 6).
    pub fn record_inbound_with(
        &mut self,
        day: Day,
        target: AccountId,
        source: InboundSource,
        ty: ActionType,
        outcome: ActionOutcome,
        n: u32,
    ) {
        if n == 0 {
            return;
        }
        self.day_mut(day)
            .inbound
            .entry((target, source))
            .or_default()
            .record(ty, outcome, n);
    }

    /// Record a like-delivery burst onto a photo.
    pub fn record_photo_likes(&mut self, day: Day, media: MediaId, total: u32, max_hourly: u32) {
        if total == 0 {
            return;
        }
        self.day_mut(day)
            .photo_likes
            .entry(media)
            .or_default()
            .add_burst(total, max_hourly);
    }

    /// Append a full event if either endpoint is event-tracked; returns
    /// whether it was retained. (Aggregates must be recorded separately —
    /// the log does not double-count on your behalf.)
    pub fn push_event(&mut self, ev: ActionEvent) -> bool {
        let target_tracked = ev
            .target
            .account()
            .is_some_and(|t| self.event_tracked.contains(&t));
        if self.event_tracked.contains(&ev.actor) || target_tracked {
            let day = ev.at.day();
            self.day_mut(day).events.push(ev);
            true
        } else {
            false
        }
    }

    /// All retained events in `[start, end)` for which `pred` holds.
    pub fn events_in<'a>(
        &'a self,
        start: Day,
        end: Day,
        mut pred: impl FnMut(&ActionEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a ActionEvent> {
        self.iter_range(start, end)
            .flat_map(|(_, d)| d.events.iter())
            .filter(move |e| pred(e))
    }

    /// Sum of outbound attempted actions of `ty` by `actor` over `[start, end)`.
    pub fn total_outbound(&self, actor: AccountId, ty: ActionType, start: Day, end: Day) -> u64 {
        self.iter_range(start, end)
            .map(|(_, d)| u64::from(d.outbound_attempted(actor, ty)))
            .sum()
    }

    /// Sum of delivered inbound actions of `ty` to `target` over `[start, end)`.
    pub fn total_inbound(&self, target: AccountId, ty: ActionType, start: Day, end: Day) -> u64 {
        self.iter_range(start, end)
            .filter_map(|(_, d)| d.inbound_of(target))
            .map(|c| u64::from(c.delivered[ty.index()]))
            .sum()
    }

    /// Sum of delivered inbound actions of `ty` to `target` from a specific
    /// source ASN over `[start, end)`.
    pub fn total_inbound_from(
        &self,
        target: AccountId,
        asn: AsnId,
        ty: ActionType,
        start: Day,
        end: Day,
    ) -> u64 {
        self.iter_range(start, end)
            .filter_map(|(_, d)| d.inbound_from(target, asn))
            .map(|c| u64::from(c.delivered[ty.index()]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionTarget;
    use crate::fingerprint::ClientFingerprint;
    use crate::net::IpAddr4;

    fn ev(actor: u32, target: u32, day: u32) -> ActionEvent {
        ActionEvent {
            at: Day(day).start().plus_hours(1),
            actor: AccountId(actor),
            action: ActionType::Follow,
            target: ActionTarget::Account(AccountId(target)),
            ip: IpAddr4(1),
            asn: AsnId(0),
            fingerprint: ClientFingerprint::OfficialApp,
            outcome: ActionOutcome::Delivered,
        }
    }

    #[test]
    fn outbound_aggregation_by_asn_and_fingerprint() {
        let mut log = ActionLog::new();
        let a = AccountId(1);
        let app = ClientFingerprint::OfficialApp;
        let spoof = ClientFingerprint::SpoofedMobile { variant: 1 };
        log.record_outbound(Day(0), a, AsnId(0), app, ActionType::Like, ActionOutcome::Delivered, 5);
        log.record_outbound(Day(0), a, AsnId(1), spoof, ActionType::Like, ActionOutcome::Blocked, 3);
        log.record_outbound(Day(0), a, AsnId(1), app, ActionType::Like, ActionOutcome::Delivered, 2);
        let d = log.day(Day(0)).unwrap();
        assert_eq!(d.outbound_attempted(a, ActionType::Like), 10);
        // Merged across fingerprints at one ASN.
        let at1 = d.outbound_at(a, AsnId(1)).unwrap();
        assert_eq!(at1.blocked_of(ActionType::Like), 3);
        assert_eq!(at1.attempted_of(ActionType::Like), 5);
        // Fingerprints remain distinguishable in the raw map.
        assert_eq!(d.outbound.len(), 3);
        assert_eq!(log.total_outbound(a, ActionType::Like, Day(0), Day(1)), 10);
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut log = ActionLog::new();
        log.record_outbound(
            Day(0),
            AccountId(1),
            AsnId(0),
            ClientFingerprint::OfficialApp,
            ActionType::Like,
            ActionOutcome::Delivered,
            0,
        );
        log.record_inbound(Day(0), AccountId(1), None, ActionType::Like, 0);
        assert!(log.day(Day(0)).is_none(), "no day record materialised");
    }

    #[test]
    fn inbound_totals_over_range_and_sources() {
        let mut log = ActionLog::new();
        let t = AccountId(9);
        log.record_inbound(Day(1), t, None, ActionType::Follow, 2);
        log.record_inbound(Day(3), t, Some(AsnId(7)), ActionType::Follow, 5);
        assert_eq!(log.total_inbound(t, ActionType::Follow, Day(0), Day(3)), 2);
        assert_eq!(log.total_inbound(t, ActionType::Follow, Day(0), Day(10)), 7);
        assert_eq!(
            log.total_inbound_from(t, AsnId(7), ActionType::Follow, Day(0), Day(10)),
            5
        );
        assert_eq!(
            log.total_inbound_from(t, AsnId(8), ActionType::Follow, Day(0), Day(10)),
            0
        );
    }

    #[test]
    fn photo_like_bursts_track_peak_hourly() {
        let mut log = ActionLog::new();
        let m = MediaId(4);
        log.record_photo_likes(Day(2), m, 300, 150);
        log.record_photo_likes(Day(2), m, 400, 200);
        let p = log.day(Day(2)).unwrap().photo_likes[&m];
        assert_eq!(p.total, 700);
        assert_eq!(p.max_hourly, 200);
    }

    #[test]
    fn events_retained_only_for_tracked_accounts() {
        let mut log = ActionLog::new();
        log.track_events_for(AccountId(7));
        assert!(!log.push_event(ev(1, 2, 0)), "untracked dropped");
        assert!(log.push_event(ev(7, 2, 0)), "tracked actor kept");
        assert!(log.push_event(ev(3, 7, 1)), "tracked target kept");
        let n = log.events_in(Day(0), Day(2), |_| true).count();
        assert_eq!(n, 2);
        let n0 = log.events_in(Day(0), Day(1), |_| true).count();
        assert_eq!(n0, 1);
    }

    #[test]
    fn iter_range_clamps_to_log() {
        let mut log = ActionLog::new();
        log.record_inbound(Day(0), AccountId(0), None, ActionType::Like, 1);
        let collected: Vec<Day> = log.iter_range(Day(0), Day(100)).map(|(d, _)| d).collect();
        assert_eq!(collected, vec![Day(0)]);
        assert_eq!(log.iter_range(Day(5), Day(2)).count(), 0);
    }

    #[test]
    fn horizon_grows_with_day_mut() {
        let mut log = ActionLog::new();
        assert_eq!(log.horizon(), Day(0));
        log.day_mut(Day(4));
        assert_eq!(log.horizon(), Day(5));
    }
}
