//! Synthetic internet model: autonomous systems, IP addresses, geolocation.
//!
//! Attribution in the paper rides on network metadata: services are located
//! by the ASNs their traffic originates from (Table 7), customers by login
//! IP geolocation (Figure 2), thresholds are computed *per ASN* (§6.2), and
//! the epilogue's evasion happens by moving traffic to new ASNs and proxy
//! networks (§6.4). We model just enough of the internet for those
//! mechanisms: a registry of ASNs, each owning a contiguous synthetic IPv4
//! block located in one country, plus a geolocation service mapping any IP
//! back to its ASN and country.

use crate::country::Country;
use crate::ids::AsnId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A synthetic IPv4 address. We use plain `u32` arithmetic internally and
/// render dotted-quad for display; no parsing is ever needed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct IpAddr4(pub u32);

impl std::fmt::Display for IpAddr4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            (v >> 24) & 0xff,
            (v >> 16) & 0xff,
            (v >> 8) & 0xff,
            v & 0xff
        )
    }
}

/// The kind of network an AS represents; relevant both to threshold design
/// (mixed vs pure-abuse ASNs, §6.2) and to realism of the synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsnKind {
    /// Residential/mobile eyeball network: organic logins originate here.
    Residential,
    /// Hosting/datacenter network: AAS automation typically originates here.
    Hosting,
    /// Commercial proxy network: many small scattered blocks, used by
    /// services evading ASN-level countermeasures (§6.4 epilogue).
    Proxy,
}

/// Registry entry for one autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsnInfo {
    /// The AS's id in the registry.
    pub id: AsnId,
    /// Synthetic AS number (display only; distinct from the dense `id`).
    pub number: u32,
    /// Short operator name, e.g. `"ru-host-1"`.
    pub name: String,
    /// Country the AS (and its whole address block) is located in.
    pub country: Country,
    /// What kind of network this is.
    pub kind: AsnKind,
    /// First address of the block owned by this AS (inclusive).
    pub block_start: u32,
    /// Size of the owned block in addresses.
    pub block_len: u32,
}

impl AsnInfo {
    /// Whether `ip` falls inside this AS's block.
    pub fn contains(&self, ip: IpAddr4) -> bool {
        ip.0 >= self.block_start && (ip.0 - self.block_start) < self.block_len
    }
}

/// Registry of all autonomous systems in the simulated internet, with
/// geolocation lookups.
///
/// Blocks are allocated contiguously in registration order, which makes
/// IP→ASN lookup a binary search and keeps the whole model allocation-free
/// on the hot path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsnRegistry {
    asns: Vec<AsnInfo>,
    next_addr: u32,
    by_name: HashMap<String, AsnId>,
}

impl AsnRegistry {
    /// An empty registry. Address space starts at 1.0.0.0 to avoid the
    /// all-zero address.
    pub fn new() -> Self {
        Self {
            asns: Vec::new(),
            next_addr: 0x0100_0000,
            by_name: HashMap::new(),
        }
    }

    /// Register a new AS owning a fresh block of `block_len` addresses.
    ///
    /// # Panics
    /// Panics if the name is already taken, the block is empty, or the
    /// synthetic address space is exhausted.
    pub fn register(
        &mut self,
        name: &str,
        country: Country,
        kind: AsnKind,
        block_len: u32,
    ) -> AsnId {
        assert!(block_len > 0, "ASN block must be non-empty");
        assert!(
            !self.by_name.contains_key(name),
            "duplicate ASN name {name:?}"
        );
        let start = self.next_addr;
        self.next_addr = start
            .checked_add(block_len)
            .expect("synthetic IPv4 space exhausted");
        let id = AsnId(self.asns.len() as u32);
        self.asns.push(AsnInfo {
            id,
            number: 64_512 + id.0, // private-use ASN range, display only
            name: name.to_owned(),
            country,
            kind,
            block_start: start,
            block_len,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Number of registered ASNs.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// True if no ASNs have been registered.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Look up an AS by id.
    pub fn get(&self, id: AsnId) -> &AsnInfo {
        &self.asns[id.index()]
    }

    /// Look up an AS by its registered name.
    pub fn by_name(&self, name: &str) -> Option<AsnId> {
        self.by_name.get(name).copied()
    }

    /// Iterate over all registered ASNs.
    pub fn iter(&self) -> impl Iterator<Item = &AsnInfo> {
        self.asns.iter()
    }

    /// Pick the `k`-th address of an AS's block (wrapping within the block).
    ///
    /// Callers that want "a diverse set of IPs within the ASN" pass varying
    /// `k`; callers modelling a small static IP pool pass small `k`.
    pub fn ip_in(&self, id: AsnId, k: u32) -> IpAddr4 {
        let a = self.get(id);
        IpAddr4(a.block_start + (k % a.block_len))
    }

    /// Geolocate an address to its AS, if it belongs to any registered block.
    pub fn locate_asn(&self, ip: IpAddr4) -> Option<AsnId> {
        // Blocks are contiguous and sorted by construction.
        let idx = self
            .asns
            .partition_point(|a| a.block_start + a.block_len <= ip.0);
        let cand = self.asns.get(idx)?;
        cand.contains(ip).then_some(cand.id)
    }

    /// Geolocate an address to a country (the platform's "IP geolocation
    /// system" from §5.1).
    pub fn locate_country(&self, ip: IpAddr4) -> Option<Country> {
        self.locate_asn(ip).map(|id| self.get(id).country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> AsnRegistry {
        let mut r = AsnRegistry::new();
        r.register("us-res-1", Country::Us, AsnKind::Residential, 1_000);
        r.register("ru-host-1", Country::Ru, AsnKind::Hosting, 256);
        r.register("id-res-1", Country::Id, AsnKind::Residential, 500);
        r
    }

    #[test]
    fn blocks_are_disjoint_and_contiguous() {
        let r = registry();
        let a = r.get(AsnId(0));
        let b = r.get(AsnId(1));
        let c = r.get(AsnId(2));
        assert_eq!(a.block_start + a.block_len, b.block_start);
        assert_eq!(b.block_start + b.block_len, c.block_start);
    }

    #[test]
    fn ip_lookup_roundtrips() {
        let r = registry();
        for id in [AsnId(0), AsnId(1), AsnId(2)] {
            for k in [0u32, 1, 255] {
                let ip = r.ip_in(id, k);
                assert_eq!(r.locate_asn(ip), Some(id), "ip {ip} of {id}");
                assert_eq!(r.locate_country(ip), Some(r.get(id).country));
            }
        }
    }

    #[test]
    fn lookup_outside_any_block_is_none() {
        let r = registry();
        assert_eq!(r.locate_asn(IpAddr4(0)), None);
        let last = r.get(AsnId(2));
        let past_end = IpAddr4(last.block_start + last.block_len);
        assert_eq!(r.locate_asn(past_end), None);
    }

    #[test]
    fn ip_in_wraps_within_block() {
        let r = registry();
        let a = r.get(AsnId(1));
        assert_eq!(r.ip_in(AsnId(1), a.block_len), r.ip_in(AsnId(1), 0));
    }

    #[test]
    fn by_name_lookup() {
        let r = registry();
        assert_eq!(r.by_name("ru-host-1"), Some(AsnId(1)));
        assert_eq!(r.by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate ASN name")]
    fn duplicate_names_rejected() {
        let mut r = AsnRegistry::new();
        r.register("x", Country::Us, AsnKind::Hosting, 10);
        r.register("x", Country::Ru, AsnKind::Hosting, 10);
    }

    #[test]
    fn dotted_quad_display() {
        assert_eq!(IpAddr4(0x0100_0001).to_string(), "1.0.0.1");
        assert_eq!(IpAddr4(0xC0A8_0101).to_string(), "192.168.1.1");
    }
}
