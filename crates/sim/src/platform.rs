//! The platform engine: the simulated "Instagram".
//!
//! [`Platform`] owns the clock, accounts, graph, internet model and action
//! log, and exposes the two submission paths of the two-speed design:
//!
//! * [`Platform::submit_event`] — one fully-attributed action with an
//!   explicit target; used for honeypot traffic and any tracked account.
//!   Organic reciprocation is sampled per-target and scheduled as future
//!   *events* (so honeypot inboxes contain realistic actors, countries and
//!   timestamps).
//! * [`Platform::submit_batch`] — a daily batch of `count` actions from one
//!   account, with the target population summarised by [`PoolStats`];
//!   reciprocation is sampled binomially and scheduled as future aggregate
//!   inbound counts.
//!
//! Both paths run the same middleware, in order:
//!
//! 1. **public-API quota** — OAuth traffic is rate-limited to uselessness
//!    (§2), which is why services spoof the private mobile API;
//! 2. **baseline IP-volume defense** — the pre-existing system that already
//!    polices Followersgratis (§5: "high volumes of abuse originating from a
//!    small number of IP addresses");
//! 3. **the installed [`EnforcementPolicy`]** — the experimental
//!    countermeasures of §6.
//!
//! Delayed removals and scheduled reciprocation are applied by
//! [`Platform::begin_day`], which the engine calls at each day boundary.

use crate::account::{AccountStore, ReciprocityProfile};
use crate::actions::{ActionEvent, ActionOutcome, ActionTarget, ActionType, TypeCounts};
use crate::apply::{apply_shard, split_decision, DepositOp, ShardApply};
use crate::behavior::{
    response_probability, sample_binomial, BehaviorParams, ResponseChannel,
};
use crate::enforcement::{
    Countermeasure, Direction, EnforcementContext, EnforcementPolicy, NoEnforcement,
};
use crate::fingerprint::ClientFingerprint;
use crate::graph::SocialGraph;
use crate::ids::{AccountId, AsnId, MediaId, ServiceId};
use crate::log::{ActionLog, DayLog};
use crate::net::{AsnRegistry, IpAddr4};
use crate::ratelimit::{public_api_quota, DenseWindowLimiter};
use crate::time::{Day, SimClock, SimTime, SECS_PER_DAY};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Platform-wide tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Organic behaviour constants.
    pub behavior: BehaviorParams,
    /// Baseline anti-abuse: maximum delivered actions per source IP per day
    /// before the edge starts refusing (visibly). Services with large
    /// address pools never hit this; Followersgratis's handful of IPs do.
    pub ip_daily_action_cap: u32,
    /// Reciprocation window: an inbound action may be reciprocated on any of
    /// the following `response_window_days` days (uniformly), starting with
    /// the day of the action itself. The paper observed reciprocation
    /// "uniformly distributed throughout the trial period".
    pub response_window_days: u32,
    /// Worker threads for the parallel phases of the daily engine
    /// (DESIGN.md §4): the per-customer decision (plan) phase and the
    /// target-sharded apply phase, plus the analysis/detection fork-joins.
    /// Results are byte-identical for any value ≥ 1; this only controls how
    /// the work is sharded.
    pub worker_threads: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            behavior: BehaviorParams::default(),
            ip_daily_action_cap: 2_000,
            response_window_days: 6,
            worker_threads: 1,
        }
    }
}

/// Mean reciprocation propensities of a target pool, as computed by the
/// service's own targeting engine over its curated pool. Used by the batch
/// path in place of per-target profiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Mean P(like back | like) across the pool.
    pub like_for_like: f64,
    /// Mean P(follow | like) across the pool.
    pub follow_for_like: f64,
    /// Mean P(follow back | follow) across the pool.
    pub follow_for_follow: f64,
}

impl PoolStats {
    /// A pool that never responds (collusion deliveries, unfollow batches).
    pub const INERT: PoolStats = PoolStats {
        like_for_like: 0.0,
        follow_for_like: 0.0,
        follow_for_follow: 0.0,
    };

    /// Mean propensity for a channel.
    pub fn channel(&self, ch: ResponseChannel) -> f64 {
        match ch {
            ResponseChannel::LikeForLike => self.like_for_like,
            ResponseChannel::FollowForLike => self.follow_for_like,
            ResponseChannel::FollowForFollow => self.follow_for_follow,
        }
    }
}

/// A daily aggregate submission.
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest {
    /// Account performing the actions.
    pub actor: AccountId,
    /// Action type.
    pub action: ActionType,
    /// Number of actions.
    pub count: u32,
    /// Source ASN.
    pub asn: AsnId,
    /// Source address (must belong to `asn` for attribution to make sense).
    pub ip: IpAddr4,
    /// Client fingerprint.
    pub fingerprint: ClientFingerprint,
    /// Target-pool reciprocation stats ([`PoolStats::INERT`] if no organic
    /// response is possible).
    pub pool: PoolStats,
    /// Ground-truth attribution (invisible to the detection pipeline; used
    /// only for validation and for scoring classifiers).
    pub service: Option<ServiceId>,
}

/// What a batch submission produced, as observed by the *submitting client*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Actions requested.
    pub attempted: u32,
    /// Actions that landed and will stand.
    pub delivered: u32,
    /// Actions visibly refused (blocked by countermeasure or edge defense).
    pub blocked: u32,
    /// Actions that landed but are scheduled for silent removal tomorrow.
    /// The client cannot distinguish these from `delivered`.
    pub deferred: u32,
    /// Actions refused by public-API rate limiting.
    pub rate_limited: u32,
}

impl BatchResult {
    /// What the submitting client perceives as having succeeded.
    pub fn visible_success(&self) -> u32 {
        self.delivered + self.deferred
    }

    /// What the submitting client perceives as having failed.
    pub fn visible_failure(&self) -> u32 {
        self.blocked + self.rate_limited
    }
}

/// A single-action submission with an explicit target account.
#[derive(Debug, Clone, Copy)]
pub struct EventRequest {
    /// Account performing the action.
    pub actor: AccountId,
    /// Action type.
    pub action: ActionType,
    /// Target account (for `Post`, the actor itself).
    pub target: AccountId,
    /// Source ASN.
    pub asn: AsnId,
    /// Source address.
    pub ip: IpAddr4,
    /// Client fingerprint.
    pub fingerprint: ClientFingerprint,
    /// Ground-truth attribution.
    pub service: Option<ServiceId>,
}

/// A removal scheduled by the delayed-removal countermeasure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum PendingRemoval {
    /// Remove an exact follow edge (event path).
    Edge {
        /// Follower to strip.
        from: AccountId,
        /// Account being followed.
        to: AccountId,
    },
    /// Decrement aggregate follow counters (batch path). `to` is known for
    /// collusion deliveries (the paying recipient) and unknown for
    /// reciprocity batches (scattered organic targets).
    Aggregate {
        /// Account whose outbound follows are undone.
        from: AccountId,
        /// Account whose follower count is undone, if known.
        to: Option<AccountId>,
        /// Number of follows to undo.
        count: u32,
    },
}

/// A future organic reciprocation, batch form.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingResponse {
    /// Customer receiving the reciprocation.
    target: AccountId,
    /// Response action type.
    action: ActionType,
    /// Number of responses.
    count: u32,
}

/// A future organic reciprocation, event form (honeypot path).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingEventResponse {
    /// When the organic user responds.
    at: SimTime,
    /// The responding organic user.
    responder: AccountId,
    /// Response action type.
    action: ActionType,
    /// The account being responded to (the honeypot/customer).
    to: AccountId,
}

/// Per-day platform-side counters that are not derivable from the log.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DayMetrics {
    /// Follows silently removed today by the delayed-removal countermeasure.
    pub removed_follows: u32,
    /// Actions visibly refused by the baseline IP-volume defense.
    pub edge_blocked: u32,
}

/// First address of the synthetic IPv4 space ([`AsnRegistry`] allocates
/// blocks contiguously from here), used to index the dense IP-volume table.
const IP_BASE: u32 = 0x0100_0000;

/// Day-stamped per-IP volume slot: `used` counts only if `day` matches the
/// querying day, which makes the daily reset O(1) instead of a table clear.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct IpVolume {
    day: u32,
    used: u32,
}

const STALE_IP_VOLUME: IpVolume = IpVolume { day: u32::MAX, used: 0 };

/// Append `day`-indexed queue access for the pending-work tables.
fn day_queue<T>(queue: &mut Vec<Vec<T>>, day: Day) -> &mut Vec<T> {
    let idx = day.0 as usize;
    if idx >= queue.len() {
        queue.resize_with(idx + 1, Vec::new);
    }
    &mut queue[idx]
}

/// Observer of the platform's committed activity stream.
///
/// A sink sees each simulated day exactly once, *after* the engine has
/// fully written it: [`Platform::begin_day`] drains every day strictly
/// before the day being opened, and the study epilogue flushes the tail
/// via [`Platform::drain_sink_through`]. Logins are forwarded as they
/// are recorded (the serial mutation path, so call order is
/// deterministic for any worker-thread count).
///
/// The installed sink is *observability*: it is excluded from
/// serialization exactly like the enforcement policy and the obs
/// recorder, must never mutate platform state, and must never feed the
/// deterministic results — the golden-digest suite pins that a recorder
/// sink leaves the study byte-identical.
pub trait EventSink: std::fmt::Debug + Send + Sync {
    /// The next day this sink expects (its drain cursor). Days are
    /// delivered in order with no gaps; a day with no activity is
    /// delivered with `log == None`.
    fn next_day(&self) -> Day;

    /// A login by `account` via `asn`, observed during `day`.
    fn on_login(&mut self, day: Day, account: AccountId, asn: AsnId);

    /// Day `day` is complete: no further records can be written to it.
    fn on_day_complete(&mut self, day: Day, log: Option<&DayLog>);

    /// Recover the concrete sink type after [`Platform::take_sink`]
    /// (`Box<dyn EventSink>` cannot be downcast directly). Implementors
    /// return `self`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Take (and empty) a day's queue without disturbing the table shape.
fn take_day_queue<T>(queue: &mut Vec<Vec<T>>, day: Day) -> Vec<T> {
    queue
        .get_mut(day.0 as usize)
        .map(std::mem::take)
        .unwrap_or_default()
}

/// The simulated platform.
///
/// Serialization covers every field that is *state*: the clock, arenas,
/// logs, pending queues, counters and the RNG stream. The two skipped
/// fields are resupplied on resume — the enforcement policy because each
/// study phase installs its own policy at entry (so a phase-boundary
/// checkpoint never needs the old box), and the observability recorder
/// because metrics are excluded from result digests by design.
#[derive(Debug, Serialize, Deserialize)]
pub struct Platform {
    /// Simulation clock, advanced by the engine.
    pub clock: SimClock,
    /// All accounts.
    pub accounts: AccountStore,
    /// The follow graph.
    pub graph: SocialGraph,
    /// The internet model.
    pub asns: AsnRegistry,
    /// The action log.
    pub log: ActionLog,
    /// Tuning knobs.
    pub config: PlatformConfig,
    /// Observability kit: deterministic metrics, wall-clock timings, and the
    /// `FOOTSTEPS_TRACE`-gated event trace. Metrics are recorded only on the
    /// serial mutation paths below, so the snapshot is identical for any
    /// decision-phase worker count.
    #[serde(skip)]
    pub obs: footsteps_obs::Recorder,
    #[serde(skip)]
    policy: Box<dyn EnforcementPolicy>,
    /// Event-stream observer (`footsteps-stream` recorder / online
    /// detector). Skipped like `policy`: a sink is reinstalled by whoever
    /// owns the study, never resurrected from a checkpoint.
    #[serde(skip)]
    sink: Option<Box<dyn EventSink>>,
    oauth_quota: DenseWindowLimiter,
    /// Per-IP delivered volume, indexed by `ip - IP_BASE`, day-stamped.
    ip_volume: Vec<IpVolume>,
    /// Pending-work queues, indexed by `Day::0`.
    pending_removals: Vec<Vec<PendingRemoval>>,
    pending_responses: Vec<Vec<PendingResponse>>,
    pending_event_responses: Vec<Vec<PendingEventResponse>>,
    /// Per-account login counts by country, indexed by account id.
    logins: Vec<[u32; crate::country::Country::ALL.len()]>,
    /// Per-account ground-truth service bitmask, indexed by account id.
    ground_truth: Vec<u8>,
    /// Per-day metrics, indexed by `Day::0`.
    metrics: Vec<DayMetrics>,
    rng: SmallRng,
}

impl Platform {
    /// Build a platform over a prepared internet model.
    pub fn new(asns: AsnRegistry, config: PlatformConfig, rng: SmallRng) -> Self {
        Self {
            clock: SimClock::new(),
            accounts: AccountStore::new(),
            graph: SocialGraph::new(),
            asns,
            log: ActionLog::new(),
            config,
            obs: footsteps_obs::Recorder::from_env(),
            policy: Box::new(NoEnforcement),
            sink: None,
            oauth_quota: public_api_quota(),
            ip_volume: Vec::new(),
            pending_removals: Vec::new(),
            pending_responses: Vec::new(),
            pending_event_responses: Vec::new(),
            logins: Vec::new(),
            ground_truth: Vec::new(),
            metrics: Vec::new(),
            rng,
        }
    }

    /// Today's delivered-volume counter for `ip`, reset lazily at day
    /// boundaries via the day stamp.
    fn ip_used_mut(&mut self, ip: IpAddr4, day: Day) -> &mut u32 {
        let idx = ip
            .0
            .checked_sub(IP_BASE)
            .expect("IP below the synthetic address space") as usize;
        if idx >= self.ip_volume.len() {
            self.ip_volume.resize(idx + 1, STALE_IP_VOLUME);
        }
        let slot = &mut self.ip_volume[idx];
        if slot.day != day.0 {
            slot.day = day.0;
            slot.used = 0;
        }
        &mut slot.used
    }

    fn metrics_mut(&mut self, day: Day) -> &mut DayMetrics {
        let idx = day.0 as usize;
        if idx >= self.metrics.len() {
            self.metrics.resize(idx + 1, DayMetrics::default());
        }
        &mut self.metrics[idx]
    }

    /// Install an enforcement policy (replacing any previous one).
    pub fn set_policy(&mut self, policy: Box<dyn EnforcementPolicy>) {
        self.policy = policy;
    }

    /// Remove any installed policy.
    pub fn clear_policy(&mut self) {
        self.policy = Box::new(NoEnforcement);
    }

    /// Install an event sink (replacing any previous one). Days strictly
    /// before the sink's `next_day` cursor are never replayed to it.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Remove and return the installed event sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Deliver every completed day in `[sink.next_day(), end)` to the
    /// installed sink. `begin_day` calls this with the day being opened;
    /// the study calls it once more past the final day so the tail of the
    /// run is flushed.
    pub fn drain_sink_through(&mut self, end: Day) {
        // Move the sink out for the loop: it borrows mutably while the
        // log is read immutably.
        let Some(mut sink) = self.sink.take() else {
            return;
        };
        while sink.next_day() < end {
            let day = sink.next_day();
            sink.on_day_complete(day, self.log.day(day));
        }
        self.sink = Some(sink);
    }

    /// Advance to the start of `day` and apply everything scheduled for it:
    /// delayed removals first (undoing yesterday's flagged follows), then
    /// matured organic reciprocations.
    pub fn begin_day(&mut self, day: Day) {
        // Everything before `day` is now immutable history: stream it to
        // the sink before the new day opens.
        self.drain_sink_through(day);
        self.clock.advance_to_day(day);
        self.obs.set_day(day.0);
        self.apply_removals(day);
        self.apply_responses(day);
        self.apply_event_responses(day);
    }

    /// Per-day metrics (zeros if nothing was recorded).
    pub fn metrics(&self, day: Day) -> DayMetrics {
        self.metrics
            .get(day.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Ground-truth services that have driven this account (bitmask over
    /// [`ServiceId::index`]). For classifier scoring only.
    pub fn ground_truth_services(&self, id: AccountId) -> Vec<ServiceId> {
        let mask = self.ground_truth.get(id.index()).copied().unwrap_or(0);
        ServiceId::ALL
            .into_iter()
            .filter(|s| mask & (1 << s.index()) != 0)
            .collect()
    }

    /// Whether ground truth says any service drove this account.
    pub fn is_ground_truth_abusive(&self, id: AccountId) -> bool {
        self.ground_truth.get(id.index()).is_some_and(|&m| m != 0)
    }

    /// Record a login by `account` from its home network (organic client).
    pub fn record_login(&mut self, account: AccountId) {
        let asn = self.accounts.get(account).home_asn;
        self.record_login_via(account, asn);
    }

    /// Record a login by `account` from an arbitrary ASN (services log into
    /// customer accounts from their own networks, "infrequently", §5.1).
    pub fn record_login_via(&mut self, account: AccountId, asn: AsnId) {
        if let Some(sink) = self.sink.as_mut() {
            sink.on_login(self.clock.today(), account, asn);
        }
        let country = self.asns.get(asn).country;
        let idx = account.index();
        if idx >= self.logins.len() {
            self.logins
                .resize(idx + 1, [0; crate::country::Country::ALL.len()]);
        }
        self.logins[idx][country.index()] += 1;
    }

    /// The platform geolocation answer for an account: the most frequent
    /// login country (ties broken by country index for determinism).
    pub fn login_country(&self, account: AccountId) -> Option<crate::country::Country> {
        let counts = self.logins.get(account.index())?;
        let mut best: Option<(u32, crate::country::Country)> = None;
        for c in crate::country::Country::ALL {
            let n = counts[c.index()];
            if n > 0 && best.is_none_or(|(bn, _)| n > bn) {
                best = Some((n, c));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Create a media post by `owner` now (records a `Post` action event for
    /// tracked accounts). Organic posts come from the official app; posting
    /// *services* post through their spoofed clients — the fingerprint is
    /// attribution-relevant either way.
    pub fn post_media_via(
        &mut self,
        owner: AccountId,
        asn: AsnId,
        ip: IpAddr4,
        fingerprint: ClientFingerprint,
        service: Option<ServiceId>,
    ) -> MediaId {
        self.note_ground_truth(owner, service);
        let at = self.clock.now();
        let id = self.accounts.post_media(owner, at);
        let day = at.day();
        self.log.record_outbound(
            day,
            owner,
            asn,
            fingerprint,
            ActionType::Post,
            ActionOutcome::Delivered,
            1,
        );
        self.log.push_event(ActionEvent {
            at,
            actor: owner,
            action: ActionType::Post,
            target: ActionTarget::SelfContent,
            ip,
            asn,
            fingerprint,
            outcome: ActionOutcome::Delivered,
        });
        id
    }

    /// [`Self::post_media_via`] with the official-app fingerprint (organic
    /// posting).
    pub fn post_media(&mut self, owner: AccountId, asn: AsnId, ip: IpAddr4) -> MediaId {
        self.post_media_via(owner, asn, ip, ClientFingerprint::OfficialApp, None)
    }

    /// Submit a daily aggregate batch. See module docs for the middleware
    /// order.
    pub fn submit_batch(&mut self, req: BatchRequest) -> BatchResult {
        let day = self.clock.today();
        let mut result = BatchResult {
            attempted: req.count,
            ..BatchResult::default()
        };
        if req.count == 0 {
            return result;
        }
        self.note_ground_truth(req.actor, req.service);
        self.obs
            .metrics
            .add(mix_key(req.service, req.action), u64::from(req.count));
        self.obs
            .metrics
            .observe("platform.batch_size", BATCH_SIZE_BOUNDS, u64::from(req.count));

        let mut remaining = req.count;

        // 1. Public-API quota.
        if req.fingerprint == ClientFingerprint::PublicApi {
            let granted = self
                .oauth_quota
                .acquire(req.actor.index(), self.clock.now(), remaining);
            let refused = remaining - granted;
            if refused > 0 {
                self.log.record_outbound(
                    day,
                    req.actor,
                    req.asn,
                    req.fingerprint,
                    req.action,
                    ActionOutcome::RateLimited,
                    refused,
                );
                result.rate_limited = refused;
                self.obs
                    .metrics
                    .add("platform.outbound.rate_limited", u64::from(refused));
                self.obs.trace.push(
                    "rate_limit",
                    req.actor.0 as u64,
                    u64::from(refused),
                    u64::from(granted),
                );
            }
            remaining = granted;
        }

        // 2. Baseline IP-volume defense.
        let cap = self.config.ip_daily_action_cap;
        let used = self.ip_used_mut(req.ip, day);
        let edge_room = cap.saturating_sub(*used);
        let edge_pass = remaining.min(edge_room);
        let edge_blocked = remaining - edge_pass;
        *used += edge_pass;
        if edge_blocked > 0 {
            self.log.record_outbound(
                day,
                req.actor,
                req.asn,
                req.fingerprint,
                req.action,
                ActionOutcome::Blocked,
                edge_blocked,
            );
            result.blocked += edge_blocked;
            self.metrics_mut(day).edge_blocked += edge_blocked;
            self.obs
                .metrics
                .add("platform.outbound.edge_blocked", u64::from(edge_blocked));
            self.obs.trace.push(
                "edge_block",
                req.actor.0 as u64,
                u64::from(edge_blocked),
                u64::from(req.ip.0),
            );
        }
        remaining = edge_pass;
        if remaining == 0 {
            return result;
        }

        // 3. Experimental countermeasures.
        let prior = self
            .log
            .day(day)
            .and_then(|d| d.outbound_at(req.actor, req.asn))
            .map(|c| c.attempted_of(req.action))
            .unwrap_or(0);
        let decision = self.policy.evaluate(&EnforcementContext {
            actor: req.actor,
            asn: req.asn,
            action: req.action,
            direction: Direction::Outbound,
            day,
            prior_today: prior,
            requested: remaining,
        });
        let (pass, excess, cm) = split_decision(decision, remaining, req.action);
        self.record_enforcement(Direction::Outbound, decision.bin, req.actor, pass, excess, cm);

        // Record and apply the passing portion.
        if pass > 0 {
            self.log.record_outbound(
                day,
                req.actor,
                req.asn,
                req.fingerprint,
                req.action,
                ActionOutcome::Delivered,
                pass,
            );
            result.delivered += pass;
            self.apply_batch_side_effects(&req, pass, false);
        }
        match cm {
            Countermeasure::None => {
                if excess > 0 {
                    self.log.record_outbound(
                        day,
                        req.actor,
                        req.asn,
                        req.fingerprint,
                        req.action,
                        ActionOutcome::Delivered,
                        excess,
                    );
                    result.delivered += excess;
                    self.apply_batch_side_effects(&req, excess, false);
                }
            }
            Countermeasure::Block => {
                if excess > 0 {
                    self.log.record_outbound(
                        day,
                        req.actor,
                        req.asn,
                        req.fingerprint,
                        req.action,
                        ActionOutcome::Blocked,
                        excess,
                    );
                    result.blocked += excess;
                }
            }
            Countermeasure::DelayRemoval => {
                if excess > 0 {
                    self.log.record_outbound(
                        day,
                        req.actor,
                        req.asn,
                        req.fingerprint,
                        req.action,
                        ActionOutcome::DeferredRemoval,
                        excess,
                    );
                    result.deferred += excess;
                    self.apply_batch_side_effects(&req, excess, true);
                    day_queue(&mut self.pending_removals, day.next()).push(
                        PendingRemoval::Aggregate {
                            from: req.actor,
                            to: None,
                            count: excess,
                        },
                    );
                }
            }
        }
        debug_assert_eq!(
            result.attempted,
            result.delivered + result.blocked + result.deferred + result.rate_limited
        );
        result
    }

    /// Deposit inbound actions onto `target` with **inbound-side**
    /// enforcement (§6.2 thresholds collusion traffic on the receiving
    /// account). `asn` is the collusion service's delivery network, used for
    /// threshold lookup. Returns what the *service* can observe: blocked
    /// deliveries visibly fail (the like counter does not move), deferred
    /// ones look delivered.
    pub fn deposit_inbound_enforced(
        &mut self,
        target: AccountId,
        ty: ActionType,
        requested: u32,
        asn: AsnId,
        service: Option<ServiceId>,
        media: Option<(MediaId, u32)>,
    ) -> BatchResult {
        // The recipient is a customer of the delivering service (they handed
        // over credentials or requested the actions) — ground truth either way.
        self.note_ground_truth(target, service);
        let day = self.clock.today();
        let mut result = BatchResult {
            attempted: requested,
            ..BatchResult::default()
        };
        if requested == 0 {
            return result;
        }
        let prior = self
            .log
            .day(day)
            .and_then(|d| d.inbound_from(target, asn).copied())
            .map(|c| c.delivered[ty.index()])
            .unwrap_or(0);
        let decision = self.policy.evaluate(&EnforcementContext {
            actor: target,
            asn,
            action: ty,
            direction: Direction::Inbound,
            day,
            prior_today: prior,
            requested,
        });
        let (pass, excess, cm) = split_decision(decision, requested, ty);
        self.record_enforcement(Direction::Inbound, decision.bin, target, pass, excess, cm);
        let (standing, blocked, deferred) = match cm {
            Countermeasure::None => (pass + excess, 0, 0),
            Countermeasure::Block => (pass, excess, 0),
            Countermeasure::DelayRemoval => (pass, 0, excess),
        };
        result.delivered = standing;
        result.blocked = blocked;
        result.deferred = deferred;
        if blocked > 0 {
            self.log.record_inbound_with(
                day,
                target,
                Some(asn),
                ty,
                ActionOutcome::Blocked,
                blocked,
            );
        }
        self.deposit_inbound(target, ty, standing, deferred, Some(asn), media);
        result
    }

    /// Apply a routed batch of inbound deposits, sharded by target account
    /// across up to `threads` scoped workers (the apply phase of the
    /// three-phase daily engine, DESIGN.md §4).
    ///
    /// Semantically identical to calling
    /// [`Self::deposit_inbound_enforced`] once per op in `ops` order: the
    /// returned `BatchResult`s line up with `ops`, and every observable
    /// side effect (log records and their insertion order, enforcement
    /// counters and traces, follower/media deltas, scheduled removals) is
    /// byte-identical to the serial ladder for **any** thread count. See
    /// [`crate::apply`] for the determinism argument.
    ///
    /// Per-shard wall time is recorded under `shard_span` (one span per
    /// shard, merged in shard-index order); the caller owns the enclosing
    /// wall span.
    pub fn apply_deposits_sharded(
        &mut self,
        ops: &[DepositOp],
        threads: usize,
        shard_span: &str,
    ) -> Vec<BatchResult> {
        // Ground truth is attributed for every op — including zero-quantity
        // ones — exactly as the serial ladder does before its early return.
        for op in ops {
            self.note_ground_truth(op.target, op.service);
        }
        if ops.is_empty() {
            return Vec::new();
        }
        let day = self.clock.today();
        let n_accounts = self.accounts.len();
        let shards = threads.max(1).min(n_accounts.max(1));
        let bounds: Vec<usize> = (0..=shards).map(|s| s * n_accounts / shards).collect();
        let mut shard_seqs: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (seq, op) in ops.iter().enumerate() {
            let s = bounds.partition_point(|&b| b <= op.target.index()) - 1;
            shard_seqs[s].push(seq as u32);
        }

        // Freeze the day's log state: shards read `prior_today` from this
        // snapshot plus their own local deltas. Policy and log are shared
        // read-only; each worker owns one disjoint arena range.
        let frozen = self.log.day(day);
        let policy: &dyn EnforcementPolicy = &*self.policy;
        // Worker lanes measure against a copied region stopwatch anchored
        // at `region_t0` on the span-tree timebase; the serial side grafts
        // them under the caller's open span after the join.
        let region_t0 = self.obs.timings.now_secs();
        let region = footsteps_obs::Stopwatch::start();
        let mut shard_results: Vec<(ShardApply, footsteps_obs::WorkerSpan)> =
            Vec::with_capacity(shards);
        if shards <= 1 {
            let start_secs = region.elapsed_secs();
            let mut all = self.accounts.split_ranges_mut(&bounds);
            let slice = all.pop().expect("split_ranges_mut yields one range per shard");
            let r = apply_shard(ops, &shard_seqs[0], day, frozen, policy, slice, 0);
            let span =
                footsteps_obs::WorkerSpan { lane: 0, start_secs, end_secs: region.elapsed_secs() };
            shard_results.push((r, span));
        } else {
            let slices = self.accounts.split_ranges_mut(&bounds);
            std::thread::scope(|scope| {
                let handles: Vec<_> = slices
                    .into_iter()
                    .zip(&shard_seqs)
                    .zip(bounds.windows(2))
                    .enumerate()
                    .map(|(lane, ((slice, seqs), w))| {
                        let base = w[0];
                        scope.spawn(move || {
                            let start_secs = region.elapsed_secs();
                            let r = apply_shard(ops, seqs, day, frozen, policy, slice, base);
                            let span = footsteps_obs::WorkerSpan {
                                lane: lane as u32,
                                start_secs,
                                end_secs: region.elapsed_secs(),
                            };
                            (r, span)
                        })
                    })
                    .collect();
                // Join in shard-index order: the merge order below is the
                // spawn order, never the completion order.
                for h in handles {
                    shard_results.push(h.join().expect("apply shard panicked"));
                }
            });
        }

        // ---- serial merge sweep ------------------------------------------
        // 1. Per-shard worker lanes, grafted in shard-index order under the
        //    caller's open apply span.
        let lanes: Vec<footsteps_obs::WorkerSpan> =
            shard_results.iter().map(|(_, span)| *span).collect();
        self.obs.timings.attach_workers(shard_span, region_t0, &lanes);
        // 2. Counter deltas (zero deltas are skipped by the registry, so the
        //    materialized key set is shard-count-invariant).
        for (r, _) in &shard_results {
            let c = &r.counters;
            self.obs.metrics.apply_delta([
                ("platform.inbound.delivered", c.delivered),
                ("platform.inbound.blocked", c.blocked),
                ("platform.inbound.deferred", c.deferred),
            ]);
            for (row, cols) in c.bins.iter().enumerate() {
                let keys = bin_keys(if row < 10 { row as u32 } else { u32::MAX });
                self.obs.metrics.apply_delta([
                    (keys.delivered, cols[0]),
                    (keys.blocked, cols[1]),
                    (keys.deferred, cols[2]),
                ]);
            }
        }
        // 3. Log segments, merged in global first-touch order. Keys are
        //    disjoint across shards (the key contains the target), so this
        //    reproduces the serial ladder's open-day insertion order.
        let mut recs: Vec<(u32, (AccountId, Option<AsnId>), TypeCounts)> = shard_results
            .iter()
            .flat_map(|(r, _)| r.records.iter().copied())
            .collect();
        recs.sort_unstable_by_key(|&(first_seq, _, _)| first_seq);
        if !recs.is_empty() {
            let d = self.log.day_mut(day);
            for (_, key, counts) in &recs {
                d.merge_inbound(*key, counts);
            }
        }
        // 4. Photo-burst and media deltas (commutative folds).
        for (r, _) in &shard_results {
            for (&media_id, &(total, max_hourly)) in &r.photo {
                self.log.record_photo_likes(day, media_id, total, max_hourly);
            }
            for (&media_id, &n) in &r.media_likes {
                self.accounts.media_mut(media_id).likes += n;
            }
            for (&media_id, &n) in &r.media_comments {
                self.accounts.media_mut(media_id).comments += n;
            }
        }
        // 5. One walk of the outcomes in routing order replays the serial
        //    ladder's trace events and removal scheduling.
        let mut results: Vec<BatchResult> = ops
            .iter()
            .map(|op| BatchResult {
                attempted: op.requested,
                ..BatchResult::default()
            })
            .collect();
        let mut bins: Vec<Option<u32>> = vec![None; ops.len()];
        for (r, _) in &shard_results {
            for o in &r.outcomes {
                let i = o.seq as usize;
                results[i].delivered = o.delivered;
                results[i].blocked = o.blocked;
                results[i].deferred = o.deferred;
                bins[i] = o.bin;
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if op.requested == 0 {
                continue;
            }
            let r = results[i];
            if let Some(b) = bins[i] {
                self.obs
                    .trace
                    .push("intervene.bin", op.target.0 as u64, u64::from(b), 0);
            }
            let bin_tag = bins[i].map_or(u64::MAX, u64::from);
            if r.blocked > 0 {
                self.obs
                    .trace
                    .push("enforce.block", op.target.0 as u64, u64::from(r.blocked), bin_tag);
            }
            if r.deferred > 0 {
                self.obs
                    .trace
                    .push("enforce.defer", op.target.0 as u64, u64::from(r.deferred), bin_tag);
            }
            if op.ty == ActionType::Follow && r.deferred > 0 {
                day_queue(&mut self.pending_removals, day.next()).push(
                    PendingRemoval::Aggregate {
                        from: op.target,
                        to: Some(op.target),
                        count: r.deferred,
                    },
                );
            }
        }
        results
    }

    /// Deposit `standing + deferred` inbound actions of type `ty` onto
    /// `target` (collusion-network delivery), with no enforcement. The
    /// caller has already pushed the corresponding *outbound* batches
    /// through [`Self::submit_batch`] for the participating accounts and
    /// splits the delivered/deferred totals proportionally across
    /// recipients.
    ///
    /// For likes, `media` receives the like-count and hourly-rate bookkeeping
    /// used by the revenue analysis.
    pub fn deposit_inbound(
        &mut self,
        target: AccountId,
        ty: ActionType,
        standing: u32,
        deferred: u32,
        source: Option<AsnId>,
        media: Option<(MediaId, u32)>,
    ) {
        let day = self.clock.today();
        let total = standing + deferred;
        if total == 0 {
            return;
        }
        self.log.record_inbound(day, target, source, ty, standing);
        self.log.record_inbound_with(
            day,
            target,
            source,
            ty,
            ActionOutcome::DeferredRemoval,
            deferred,
        );
        if ty == ActionType::Follow {
            self.accounts.get_mut(target).followers += total;
            if deferred > 0 {
                // The actor-side decrement is owned by the outbound batch's
                // own removal; here we schedule only the follower-side undo.
                day_queue(&mut self.pending_removals, day.next()).push(
                    PendingRemoval::Aggregate {
                        from: target,
                        to: Some(target),
                        count: deferred,
                    },
                );
            }
        }
        if ty == ActionType::Like {
            if let Some((media_id, max_hourly)) = media {
                self.accounts.media_mut(media_id).likes += u64::from(total);
                self.log.record_photo_likes(day, media_id, total, max_hourly);
            }
        }
        if ty == ActionType::Comment {
            if let Some((media_id, _)) = media {
                self.accounts.media_mut(media_id).comments += u64::from(total);
            }
        }
    }

    /// Submit one explicit action (event path).
    pub fn submit_event(&mut self, req: EventRequest) -> ActionOutcome {
        let now = self.clock.now();
        let day = now.day();
        self.note_ground_truth(req.actor, req.service);
        self.obs.metrics.incr(mix_key(req.service, req.action));

        // 1. Public-API quota.
        if req.fingerprint == ClientFingerprint::PublicApi
            && self.oauth_quota.acquire(req.actor.index(), now, 1) == 0
        {
            self.obs.metrics.incr("platform.outbound.rate_limited");
            self.obs
                .trace
                .push("rate_limit", req.actor.0 as u64, 1, 0);
            self.finish_event(req, now, ActionOutcome::RateLimited);
            return ActionOutcome::RateLimited;
        }

        // 2. Baseline IP-volume defense.
        let cap = self.config.ip_daily_action_cap;
        let used = self.ip_used_mut(req.ip, day);
        if *used >= cap {
            self.metrics_mut(day).edge_blocked += 1;
            self.obs.metrics.incr("platform.outbound.edge_blocked");
            self.obs
                .trace
                .push("edge_block", req.actor.0 as u64, 1, u64::from(req.ip.0));
            self.finish_event(req, now, ActionOutcome::Blocked);
            return ActionOutcome::Blocked;
        }
        *used += 1;

        // 3. Experimental countermeasures.
        let prior = self
            .log
            .day(day)
            .and_then(|d| d.outbound_at(req.actor, req.asn))
            .map(|c| c.attempted_of(req.action))
            .unwrap_or(0);
        let decision = self.policy.evaluate(&EnforcementContext {
            actor: req.actor,
            asn: req.asn,
            action: req.action,
            direction: Direction::Outbound,
            day,
            prior_today: prior,
            requested: 1,
        });
        let (pass, excess, cm) = split_decision(decision, 1, req.action);
        self.record_enforcement(Direction::Outbound, decision.bin, req.actor, pass, excess, cm);
        let outcome = if pass == 1 {
            ActionOutcome::Delivered
        } else {
            match cm {
                Countermeasure::None => ActionOutcome::Delivered,
                Countermeasure::Block => ActionOutcome::Blocked,
                Countermeasure::DelayRemoval => ActionOutcome::DeferredRemoval,
            }
        };

        if outcome.landed() {
            self.apply_event_side_effects(&req, outcome);
        }
        self.finish_event(req, now, outcome);
        outcome
    }

    // ----- internals -------------------------------------------------------

    /// Record the enforcement-stage verdict for a submission into the obs
    /// kit: delivered/blocked/deferred counters (scoped by direction), the
    /// per-bin attribution when the policy tagged a bin, and a trace event
    /// for anything the countermeasure actually touched.
    fn record_enforcement(
        &mut self,
        direction: Direction,
        bin: Option<u32>,
        actor: AccountId,
        pass: u32,
        excess: u32,
        cm: Countermeasure,
    ) {
        let (delivered, blocked, deferred) = match cm {
            Countermeasure::None => (pass + excess, 0, 0),
            Countermeasure::Block => (pass, excess, 0),
            Countermeasure::DelayRemoval => (pass, 0, excess),
        };
        let (k_del, k_blk, k_def) = match direction {
            Direction::Outbound => (
                "platform.outbound.delivered",
                "platform.outbound.blocked",
                "platform.outbound.deferred",
            ),
            Direction::Inbound => (
                "platform.inbound.delivered",
                "platform.inbound.blocked",
                "platform.inbound.deferred",
            ),
        };
        let m = &mut self.obs.metrics;
        m.add(k_del, u64::from(delivered));
        m.add(k_blk, u64::from(blocked));
        m.add(k_def, u64::from(deferred));
        if let Some(b) = bin {
            let keys = bin_keys(b);
            m.add(keys.delivered, u64::from(delivered));
            m.add(keys.blocked, u64::from(blocked));
            m.add(keys.deferred, u64::from(deferred));
            self.obs
                .trace
                .push("intervene.bin", actor.0 as u64, u64::from(b), 0);
        }
        let bin_tag = bin.map_or(u64::MAX, u64::from);
        if blocked > 0 {
            self.obs
                .trace
                .push("enforce.block", actor.0 as u64, u64::from(blocked), bin_tag);
        }
        if deferred > 0 {
            self.obs
                .trace
                .push("enforce.defer", actor.0 as u64, u64::from(deferred), bin_tag);
        }
    }

    fn note_ground_truth(&mut self, actor: AccountId, service: Option<ServiceId>) {
        if let Some(s) = service {
            let idx = actor.index();
            if idx >= self.ground_truth.len() {
                self.ground_truth.resize(idx + 1, 0);
            }
            self.ground_truth[idx] |= 1 << s.index();
        }
    }

    /// Aggregate side effects of `n` landed actions from a batch: degree
    /// updates and organic reciprocation scheduling. `deferred` marks
    /// actions that will be silently removed tomorrow (their reciprocation
    /// is limited to same-day responses).
    fn apply_batch_side_effects(&mut self, req: &BatchRequest, n: u32, deferred: bool) {
        let day = self.clock.today();
        match req.action {
            ActionType::Follow => {
                self.accounts.get_mut(req.actor).following += n;
            }
            ActionType::Unfollow => {
                let a = self.accounts.get_mut(req.actor);
                a.following = a.following.saturating_sub(n);
            }
            _ => {}
        }
        // Organic reciprocation for notifying actions against a live pool.
        if !req.action.notifies_target() {
            return;
        }
        let actor_kind = self.accounts.get(req.actor).kind;
        let params = self.config.behavior;
        let window = self.config.response_window_days.max(1);
        for &(channel, resp_ty) in ResponseChannel::triggered_by(req.action) {
            let pool_p = req.pool.channel(channel);
            if pool_p <= 0.0 {
                continue;
            }
            // Scale the pool mean by actor profile quality, channel-wise.
            let probe = ReciprocityProfile {
                like_for_like: pool_p,
                follow_for_like: pool_p,
                follow_for_follow: pool_p,
            };
            let p = response_probability(&params, channel, &probe, actor_kind);
            let mut k = sample_binomial(&mut self.rng, n, p);
            if deferred {
                // Only same-day responses survive: the follow/like is gone
                // tomorrow, and with it the notification prompting a return
                // action.
                k = sample_binomial(&mut self.rng, k, 1.0 / f64::from(window));
                if k > 0 {
                    self.queue_response(day, req.actor, resp_ty, k);
                }
                continue;
            }
            // Spread responses uniformly over the window.
            let base = k / window;
            let extra = k % window;
            for w in 0..window {
                let mut c = base;
                if w < extra {
                    c += 1;
                }
                if c > 0 {
                    self.queue_response(day.plus(w), req.actor, resp_ty, c);
                }
            }
        }
    }

    fn queue_response(&mut self, on: Day, target: AccountId, action: ActionType, count: u32) {
        if on == self.clock.today() {
            // Same-day responses apply immediately.
            self.apply_response(PendingResponse { target, action, count });
        } else {
            day_queue(&mut self.pending_responses, on)
                .push(PendingResponse { target, action, count });
        }
    }

    fn apply_response(&mut self, r: PendingResponse) {
        let day = self.clock.today();
        let acct = self.accounts.get(r.target);
        if acct.deleted_at.is_some() {
            return;
        }
        self.log.record_inbound(day, r.target, None, r.action, r.count);
        if r.action == ActionType::Follow {
            self.accounts.get_mut(r.target).followers += r.count;
        }
    }

    /// Per-event side effects: graph/degree/media updates plus per-target
    /// reciprocation sampling.
    fn apply_event_side_effects(&mut self, req: &EventRequest, outcome: ActionOutcome) {
        let day = self.clock.today();
        match req.action {
            ActionType::Follow => {
                self.graph.follow(&mut self.accounts, req.actor, req.target);
                if outcome == ActionOutcome::DeferredRemoval {
                    day_queue(&mut self.pending_removals, day.next()).push(
                        PendingRemoval::Edge {
                            from: req.actor,
                            to: req.target,
                        },
                    );
                }
            }
            ActionType::Unfollow => {
                self.graph.unfollow(&mut self.accounts, req.actor, req.target);
            }
            ActionType::Like => {
                if let Some(m) = self.accounts.latest_media_of(req.target) {
                    self.accounts.media_mut(m).likes += 1;
                }
            }
            ActionType::Comment => {
                if let Some(m) = self.accounts.latest_media_of(req.target) {
                    self.accounts.media_mut(m).comments += 1;
                }
            }
            ActionType::Post => {}
        }
        if req.action.notifies_target() && req.actor != req.target {
            self.log
                .record_inbound(day, req.target, Some(req.asn), req.action, 1);
            self.maybe_schedule_event_reciprocation(req, outcome);
        }
    }

    fn maybe_schedule_event_reciprocation(&mut self, req: &EventRequest, outcome: ActionOutcome) {
        let target = self.accounts.get(req.target);
        if target.deleted_at.is_some() || target.kind.is_honeypot() {
            // Honeypots never act; deleted accounts cannot respond.
            return;
        }
        let profile = target.reciprocity;
        let actor_kind = self.accounts.get(req.actor).kind;
        let params = self.config.behavior;
        let window = self.config.response_window_days.max(1);
        let now = self.clock.now();
        for &(channel, resp_ty) in ResponseChannel::triggered_by(req.action) {
            let p = response_probability(&params, channel, &profile, actor_kind);
            if self.rng.gen::<f64>() >= p {
                continue;
            }
            // Response lands at a uniform instant inside the window.
            let delay_secs = self.rng.gen_range(0..u64::from(window) * SECS_PER_DAY);
            let at = now.plus_secs(delay_secs);
            if outcome == ActionOutcome::DeferredRemoval && at.day() != now.day() {
                // The artefact is removed at the next day boundary; late
                // responses never happen.
                continue;
            }
            let resp = PendingEventResponse {
                at,
                responder: req.target,
                action: resp_ty,
                to: req.actor,
            };
            if at.day() == now.day() {
                self.apply_event_response(resp);
            } else {
                day_queue(&mut self.pending_event_responses, at.day()).push(resp);
            }
        }
    }

    fn apply_event_response(&mut self, r: PendingEventResponse) {
        if self.accounts.get(r.to).deleted_at.is_some()
            || self.accounts.get(r.responder).deleted_at.is_some()
        {
            return;
        }
        let day = r.at.day();
        let responder = self.accounts.get(r.responder);
        let asn = responder.home_asn;
        // Spread organic responders across their home network's block.
        let ip = self.asns.ip_in(asn, r.responder.0.wrapping_mul(2_654_435_761));
        if r.action == ActionType::Follow {
            self.graph.follow(&mut self.accounts, r.responder, r.to);
        }
        self.log.record_inbound(day, r.to, Some(asn), r.action, 1);
        self.log.push_event(ActionEvent {
            at: r.at,
            actor: r.responder,
            action: r.action,
            target: ActionTarget::Account(r.to),
            ip,
            asn,
            fingerprint: ClientFingerprint::OfficialApp,
            outcome: ActionOutcome::Delivered,
        });
    }

    fn finish_event(&mut self, req: EventRequest, at: SimTime, outcome: ActionOutcome) {
        let day = at.day();
        self.log.record_outbound(
            day,
            req.actor,
            req.asn,
            req.fingerprint,
            req.action,
            outcome,
            1,
        );
        self.log.push_event(ActionEvent {
            at,
            actor: req.actor,
            action: req.action,
            target: ActionTarget::Account(req.target),
            ip: req.ip,
            asn: req.asn,
            fingerprint: req.fingerprint,
            outcome,
        });
    }

    fn apply_removals(&mut self, day: Day) {
        let removals = take_day_queue(&mut self.pending_removals, day);
        if removals.is_empty() {
            return;
        }
        let mut removed = 0u32;
        for r in removals {
            match r {
                PendingRemoval::Edge { from, to } => {
                    if self.graph.unfollow(&mut self.accounts, from, to) {
                        removed += 1;
                    }
                }
                PendingRemoval::Aggregate { from, to, count } => {
                    match to {
                        None => {
                            let a = self.accounts.get_mut(from);
                            a.following = a.following.saturating_sub(count);
                            // Follower-side undos (`to: Some`) are the other
                            // half of an outbound removal already counted
                            // here, so only this arm increments the metric.
                            removed += count;
                        }
                        Some(t) => {
                            let a = self.accounts.get_mut(t);
                            a.followers = a.followers.saturating_sub(count);
                        }
                    }
                }
            }
        }
        if removed > 0 {
            self.metrics_mut(day).removed_follows += removed;
            self.obs
                .metrics
                .add("platform.removed_follows", u64::from(removed));
            self.obs.trace.push("removal", 0, u64::from(removed), 0);
        }
    }

    fn apply_responses(&mut self, day: Day) {
        for r in take_day_queue(&mut self.pending_responses, day) {
            self.apply_response(r);
        }
    }

    fn apply_event_responses(&mut self, day: Day) {
        let mut responses = take_day_queue(&mut self.pending_event_responses, day);
        responses.sort_by_key(|r| (r.at, r.responder, r.to));
        for r in responses {
            self.apply_event_response(r);
        }
    }

    /// Delete an account at the current instant: tombstones it, purges its
    /// tracked edges, and (for honeypots) models the paper's observation
    /// that "all actions to or from the account are eventually removed".
    pub fn delete_account(&mut self, id: AccountId) {
        let now = self.clock.now();
        self.accounts.delete(id, now);
        if self.graph.is_tracked(id) {
            self.graph.purge_account(&mut self.accounts, id);
        }
    }
}

/// Histogram bounds for `platform.batch_size` (actions per submitted batch).
const BATCH_SIZE_BOUNDS: &[u64] = &[1, 5, 10, 25, 50, 100, 250];

/// Static metric key for the per-service action mix, `actions.<slug>.<action>`
/// (`organic` when no service drove the submission). A lookup table rather
/// than `format!` because this sits on the hottest path in the simulation.
fn mix_key(service: Option<ServiceId>, action: ActionType) -> &'static str {
    // Row order follows `ServiceId::index()`; the sixth row is organic.
    // Column order follows `ActionType::index()`.
    const KEYS: [[&str; ActionType::COUNT]; 6] = [
        [
            "actions.instalex.like",
            "actions.instalex.follow",
            "actions.instalex.comment",
            "actions.instalex.post",
            "actions.instalex.unfollow",
        ],
        [
            "actions.instazood.like",
            "actions.instazood.follow",
            "actions.instazood.comment",
            "actions.instazood.post",
            "actions.instazood.unfollow",
        ],
        [
            "actions.boostgram.like",
            "actions.boostgram.follow",
            "actions.boostgram.comment",
            "actions.boostgram.post",
            "actions.boostgram.unfollow",
        ],
        [
            "actions.hublaagram.like",
            "actions.hublaagram.follow",
            "actions.hublaagram.comment",
            "actions.hublaagram.post",
            "actions.hublaagram.unfollow",
        ],
        [
            "actions.followersgratis.like",
            "actions.followersgratis.follow",
            "actions.followersgratis.comment",
            "actions.followersgratis.post",
            "actions.followersgratis.unfollow",
        ],
        [
            "actions.organic.like",
            "actions.organic.follow",
            "actions.organic.comment",
            "actions.organic.post",
            "actions.organic.unfollow",
        ],
    ];
    let row = service.map_or(5, ServiceId::index);
    KEYS[row][action.index()]
}

/// Per-bin enforcement counter keys.
struct BinKeys {
    delivered: &'static str,
    blocked: &'static str,
    deferred: &'static str,
}

/// Static per-bin keys for the experiment's ten bins (§6.3); bins outside
/// that layout fold into a shared overflow key rather than allocating.
fn bin_keys(bin: u32) -> BinKeys {
    macro_rules! bin_row {
        ($n:literal) => {
            BinKeys {
                delivered: concat!("enforce.bin", $n, ".delivered"),
                blocked: concat!("enforce.bin", $n, ".blocked"),
                deferred: concat!("enforce.bin", $n, ".deferred"),
            }
        };
    }
    match bin {
        0 => bin_row!(0),
        1 => bin_row!(1),
        2 => bin_row!(2),
        3 => bin_row!(3),
        4 => bin_row!(4),
        5 => bin_row!(5),
        6 => bin_row!(6),
        7 => bin_row!(7),
        8 => bin_row!(8),
        9 => bin_row!(9),
        _ => BinKeys {
            delivered: "enforce.bin_other.delivered",
            blocked: "enforce.bin_other.blocked",
            deferred: "enforce.bin_other.deferred",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::ProfileKind;
    use crate::enforcement::EnforcementDecision;
    use crate::country::Country;
    use crate::net::AsnKind;
    use rand::SeedableRng;

    #[derive(Debug)]

    struct FixedThreshold {
        threshold: u32,
        cm: Countermeasure,
    }

    impl EnforcementPolicy for FixedThreshold {
        fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
            EnforcementDecision::threshold(ctx.requested, ctx.prior_today, self.threshold, self.cm)
        }
    }

    fn platform() -> Platform {
        let mut reg = AsnRegistry::new();
        reg.register("res-us", Country::Us, AsnKind::Residential, 100_000);
        reg.register("host-ru", Country::Ru, AsnKind::Hosting, 1_000);
        Platform::new(
            reg,
            PlatformConfig::default(),
            SmallRng::seed_from_u64(1234),
        )
    }

    fn organic(p: &mut Platform, profile: ReciprocityProfile) -> AccountId {
        p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            100,
            100,
            profile,
        )
    }

    fn batch(actor: AccountId, action: ActionType, count: u32, pool: PoolStats) -> BatchRequest {
        BatchRequest {
            actor,
            action,
            count,
            asn: AsnId(1),
            ip: IpAddr4(0x0100_0000 + 100_000),
            fingerprint: ClientFingerprint::SpoofedMobile { variant: 1 },
            pool,
            service: Some(ServiceId::Boostgram),
        }
    }

    #[test]
    fn plain_batch_is_delivered_and_logged() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.begin_day(Day(0));
        let r = p.submit_batch(batch(a, ActionType::Follow, 50, PoolStats::INERT));
        assert_eq!(r.delivered, 50);
        assert_eq!(r.visible_success(), 50);
        assert_eq!(p.accounts.get(a).following, 150);
        assert_eq!(
            p.log.day(Day(0)).unwrap().outbound_attempted(a, ActionType::Follow),
            50
        );
        assert!(p.is_ground_truth_abusive(a));
        assert_eq!(p.ground_truth_services(a), vec![ServiceId::Boostgram]);
    }

    #[test]
    fn block_policy_truncates_to_threshold() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.set_policy(Box::new(FixedThreshold {
            threshold: 30,
            cm: Countermeasure::Block,
        }));
        p.begin_day(Day(0));
        let r = p.submit_batch(batch(a, ActionType::Follow, 50, PoolStats::INERT));
        assert_eq!(r.delivered, 30);
        assert_eq!(r.blocked, 20);
        assert_eq!(r.visible_failure(), 20, "service can see the blocks");
        assert_eq!(p.accounts.get(a).following, 130);
    }

    #[test]
    fn threshold_accumulates_within_a_day() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.set_policy(Box::new(FixedThreshold {
            threshold: 30,
            cm: Countermeasure::Block,
        }));
        p.begin_day(Day(0));
        let r1 = p.submit_batch(batch(a, ActionType::Follow, 20, PoolStats::INERT));
        let r2 = p.submit_batch(batch(a, ActionType::Follow, 20, PoolStats::INERT));
        assert_eq!(r1.delivered, 20);
        assert_eq!(r2.delivered, 10);
        assert_eq!(r2.blocked, 10);
        // Next day the counter resets.
        p.begin_day(Day(1));
        let r3 = p.submit_batch(batch(a, ActionType::Follow, 20, PoolStats::INERT));
        assert_eq!(r3.delivered, 20);
    }

    #[test]
    fn delayed_removal_is_invisible_then_undone() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.set_policy(Box::new(FixedThreshold {
            threshold: 10,
            cm: Countermeasure::DelayRemoval,
        }));
        p.begin_day(Day(0));
        let r = p.submit_batch(batch(a, ActionType::Follow, 50, PoolStats::INERT));
        assert_eq!(r.delivered, 10);
        assert_eq!(r.deferred, 40);
        assert_eq!(r.visible_success(), 50, "client sees full success");
        assert_eq!(r.visible_failure(), 0);
        assert_eq!(p.accounts.get(a).following, 150);
        // Next day the deferred 40 are silently removed.
        p.begin_day(Day(1));
        assert_eq!(p.accounts.get(a).following, 110);
        assert_eq!(p.metrics(Day(1)).removed_follows, 40);
    }

    #[test]
    fn delay_on_likes_degrades_to_none() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.set_policy(Box::new(FixedThreshold {
            threshold: 10,
            cm: Countermeasure::DelayRemoval,
        }));
        p.begin_day(Day(0));
        let r = p.submit_batch(batch(a, ActionType::Like, 50, PoolStats::INERT));
        assert_eq!(r.delivered, 50, "likes cannot be delay-removed");
        assert_eq!(r.deferred, 0);
    }

    #[test]
    fn obs_counters_attribute_enforcement_and_action_mix() {
        let mut p = platform();
        p.obs.trace = footsteps_obs::Trace::enabled_with(64);
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.set_policy(Box::new(FixedThreshold {
            threshold: 30,
            cm: Countermeasure::Block,
        }));
        p.begin_day(Day(0));
        p.submit_batch(batch(a, ActionType::Follow, 50, PoolStats::INERT));
        let snap = p.obs.metrics.snapshot();
        assert_eq!(snap.counter("actions.boostgram.follow"), 50);
        assert_eq!(snap.counter("platform.outbound.delivered"), 30);
        assert_eq!(snap.counter("platform.outbound.blocked"), 20);
        assert_eq!(snap.counter("platform.outbound.deferred"), 0);
        let h = &snap.totals.histograms["platform.batch_size"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 50);
        let kinds: Vec<_> = p.obs.trace.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["enforce.block"]);
    }

    #[derive(Debug)]

    struct BinTagged(FixedThreshold);

    impl EnforcementPolicy for BinTagged {
        fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
            self.0.evaluate(ctx).with_bin(4)
        }
    }

    #[test]
    fn obs_counters_attribute_per_bin_outcomes() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.set_policy(Box::new(BinTagged(FixedThreshold {
            threshold: 10,
            cm: Countermeasure::DelayRemoval,
        })));
        p.begin_day(Day(0));
        p.submit_batch(batch(a, ActionType::Follow, 50, PoolStats::INERT));
        let snap = p.obs.metrics.snapshot();
        assert_eq!(snap.counter("enforce.bin4.delivered"), 10);
        assert_eq!(snap.counter("enforce.bin4.deferred"), 40);
        assert_eq!(snap.counter("enforce.bin4.blocked"), 0);
        // Next day the deferred follows are removed and counted.
        p.begin_day(Day(1));
        assert_eq!(p.obs.metrics.snapshot().counter("platform.removed_follows"), 40);
    }

    #[test]
    fn ip_volume_cap_blocks_small_pools() {
        let mut p = platform();
        p.config.ip_daily_action_cap = 100;
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        let b = organic(&mut p, ReciprocityProfile::SILENT);
        p.begin_day(Day(0));
        let r1 = p.submit_batch(batch(a, ActionType::Like, 80, PoolStats::INERT));
        // Same IP: only 20 left in today's budget, regardless of account.
        let r2 = p.submit_batch(batch(b, ActionType::Like, 80, PoolStats::INERT));
        assert_eq!(r1.delivered, 80);
        assert_eq!(r2.delivered, 20);
        assert_eq!(r2.blocked, 60);
        assert_eq!(p.metrics(Day(0)).edge_blocked, 60);
        // Budget resets next day.
        p.begin_day(Day(1));
        let r3 = p.submit_batch(batch(a, ActionType::Like, 80, PoolStats::INERT));
        assert_eq!(r3.delivered, 80);
    }

    #[test]
    fn public_api_is_rate_limited() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.begin_day(Day(0));
        let mut req = batch(a, ActionType::Like, 500, PoolStats::INERT);
        req.fingerprint = ClientFingerprint::PublicApi;
        let r = p.submit_batch(req);
        assert!(r.rate_limited >= 470, "rate_limited={}", r.rate_limited);
        assert!(r.delivered <= 30);
    }

    #[test]
    fn batch_reciprocation_arrives_over_window() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        let pool = PoolStats {
            like_for_like: 0.0,
            follow_for_like: 0.0,
            follow_for_follow: 0.5,
        };
        p.begin_day(Day(0));
        p.submit_batch(batch(a, ActionType::Follow, 1_000, pool));
        let mut total = 0u64;
        for d in 0..7u32 {
            p.begin_day(Day(d));
            total = p
                .log
                .total_inbound(a, ActionType::Follow, Day(0), Day(d + 1));
        }
        // Expected ~ 1000 * 0.5 * quality-follow(organic)=0.5*1.0.
        assert!(
            (300..700).contains(&(total as i64)),
            "reciprocation total {total}"
        );
        let followers = p.accounts.get(a).followers;
        assert_eq!(u64::from(followers), 100 + total);
    }

    #[test]
    fn deferred_batches_lose_future_reciprocation() {
        let run = |cm: Countermeasure| {
            let mut p = platform();
            let a = organic(&mut p, ReciprocityProfile::SILENT);
            p.set_policy(Box::new(FixedThreshold { threshold: 0, cm }));
            let pool = PoolStats {
                like_for_like: 0.0,
                follow_for_like: 0.0,
                follow_for_follow: 0.5,
            };
            p.begin_day(Day(0));
            p.submit_batch(batch(a, ActionType::Follow, 2_000, pool));
            for d in 1..8u32 {
                p.begin_day(Day(d));
            }
            p.log.total_inbound(a, ActionType::Follow, Day(0), Day(8))
        };
        let with_delay = run(Countermeasure::DelayRemoval);
        let without = run(Countermeasure::None);
        assert!(
            f64::from(with_delay as u32) < 0.45 * f64::from(without as u32),
            "delay={with_delay} none={without}"
        );
    }

    #[test]
    fn event_path_records_and_reciprocates() {
        let mut p = platform();
        // Highly reciprocating organic target.
        let target = organic(
            &mut p,
            ReciprocityProfile {
                like_for_like: 0.0,
                follow_for_like: 0.0,
                follow_for_follow: 1.0,
            },
        );
        let hp = p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotEmpty,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        p.graph.track(hp);
        p.log.track_events_for(hp);
        p.begin_day(Day(0));
        let outcome = p.submit_event(EventRequest {
            actor: hp,
            action: ActionType::Follow,
            target,
            asn: AsnId(1),
            ip: IpAddr4(0x0100_0000),
            fingerprint: ClientFingerprint::SpoofedMobile { variant: 2 },
            service: Some(ServiceId::Instalex),
        });
        assert_eq!(outcome, ActionOutcome::Delivered);
        // Drain the response window.
        for d in 1..8u32 {
            p.begin_day(Day(d));
        }
        // p(follow back) = 1.0 * quality^0.25; quality(E)=0.52 → ~0.85.
        // With one trial it may or may not fire; run enough follows to see some.
        let mut got = p.log.total_inbound(hp, ActionType::Follow, Day(0), Day(8));
        if got == 0 {
            // Follow more targets to make the test robust.
            for i in 0..20 {
                let t = organic(
                    &mut p,
                    ReciprocityProfile {
                        like_for_like: 0.0,
                        follow_for_like: 0.0,
                        follow_for_follow: 1.0,
                    },
                );
                let _ = i;
                p.submit_event(EventRequest {
                    actor: hp,
                    action: ActionType::Follow,
                    target: t,
                    asn: AsnId(1),
                    ip: IpAddr4(0x0100_0000),
                    fingerprint: ClientFingerprint::SpoofedMobile { variant: 2 },
                    service: Some(ServiceId::Instalex),
                });
            }
            for d in 8..16u32 {
                p.begin_day(Day(d));
            }
            got = p.log.total_inbound(hp, ActionType::Follow, Day(0), Day(16));
        }
        assert!(got > 0, "expected at least one reciprocated follow");
        // Events for the tracked honeypot exist, with organic fingerprints.
        let inbound_events: Vec<_> = p
            .log
            .events_in(Day(0), Day(16), |e| {
                e.target == ActionTarget::Account(hp) && e.actor != hp
            })
            .collect();
        assert!(!inbound_events.is_empty());
        assert!(inbound_events
            .iter()
            .all(|e| e.fingerprint == ClientFingerprint::OfficialApp));
    }

    #[test]
    fn honeypots_never_reciprocate() {
        let mut p = platform();
        let hp = p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotInactive,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        p.log.track_events_for(hp);
        let actor = organic(&mut p, ReciprocityProfile::SILENT);
        p.begin_day(Day(0));
        p.submit_event(EventRequest {
            actor,
            action: ActionType::Follow,
            target: hp,
            asn: AsnId(0),
            ip: IpAddr4(0x0100_0001),
            fingerprint: ClientFingerprint::OfficialApp,
            service: None,
        });
        for d in 1..8u32 {
            p.begin_day(Day(d));
        }
        // The honeypot received the follow but produced nothing outbound.
        assert_eq!(p.log.total_inbound(hp, ActionType::Follow, Day(0), Day(8)), 1);
        assert_eq!(p.log.total_outbound(hp, ActionType::Follow, Day(0), Day(8)), 0);
    }

    #[test]
    fn login_geolocation_majority_vote() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        p.record_login(a);
        p.record_login(a);
        p.record_login_via(a, AsnId(1)); // RU service login, infrequent
        assert_eq!(p.login_country(a), Some(Country::Us));
        assert_eq!(p.login_country(AccountId(999)), None);
    }

    #[test]
    fn collusion_deposit_updates_followers_and_photos() {
        let mut p = platform();
        let customer = organic(&mut p, ReciprocityProfile::SILENT);
        p.begin_day(Day(0));
        let m = p.post_media(customer, AsnId(0), IpAddr4(0x0100_0002));
        p.deposit_inbound(customer, ActionType::Follow, 30, 10, Some(AsnId(1)), None);
        p.deposit_inbound(customer, ActionType::Like, 200, 0, Some(AsnId(1)), Some((m, 160)));
        assert_eq!(p.accounts.get(customer).followers, 140);
        assert_eq!(p.accounts.media(m).likes, 200);
        let pl = p.log.day(Day(0)).unwrap().photo_likes[&m];
        assert_eq!(pl.total, 200);
        assert_eq!(pl.max_hourly, 160);
        // Deferred inbound follows are undone next day.
        p.begin_day(Day(1));
        assert_eq!(p.accounts.get(customer).followers, 130);
    }

    #[test]
    fn deleted_accounts_receive_no_responses() {
        let mut p = platform();
        let a = organic(&mut p, ReciprocityProfile::SILENT);
        let pool = PoolStats {
            like_for_like: 0.0,
            follow_for_like: 0.0,
            follow_for_follow: 0.9,
        };
        p.begin_day(Day(0));
        p.submit_batch(batch(a, ActionType::Follow, 500, pool));
        let followers_before = p.accounts.get(a).followers;
        p.delete_account(a);
        for d in 1..8u32 {
            p.begin_day(Day(d));
        }
        // Day-0 same-day responses may have landed before deletion, but
        // nothing after.
        assert_eq!(p.accounts.get(a).followers, followers_before);
    }
}
