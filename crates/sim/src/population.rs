//! Synthetic organic population.
//!
//! We cannot have Instagram's 800M users; what the pipeline actually needs
//! is a population whose *measurable marginals* match the ones the paper
//! reports for accounts that receive actions:
//!
//! * median out-degree (accounts followed) ≈ 465, median in-degree
//!   (followers) ≈ 796, both heavy-tailed (Figures 3/4 baselines);
//! * a global country mix (Figure 2's baseline);
//! * per-user reciprocation propensity correlated with degree imbalance
//!   (the trait services target, §5.3).
//!
//! Degrees are drawn log-normally around the medians; reciprocity profiles
//! come from [`crate::behavior::synthesize_profile`].

use crate::account::{AccountStore, ProfileKind};
use crate::behavior::{followback_tendency, synthesize_profile, BehaviorParams};
use crate::country::{Country, CountryMix};
use crate::ids::{AccountId, AsnId};
use crate::net::{AsnKind, AsnRegistry};
use crate::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for population synthesis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of organic accounts to create.
    pub size: u32,
    /// Country mix of the population.
    pub country_mix: CountryMix,
    /// Median out-degree (accounts a user follows).
    pub median_following: f64,
    /// Median in-degree (followers).
    pub median_followers: f64,
    /// Log-normal shape parameter (σ of the underlying normal) for degrees.
    pub degree_sigma: f64,
    /// Behaviour constants used to derive reciprocity profiles.
    pub behavior: BehaviorParams,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            size: 20_000,
            country_mix: CountryMix::global_organic(),
            median_following: 465.0,
            median_followers: 796.0,
            degree_sigma: 1.05,
            behavior: BehaviorParams::default(),
        }
    }
}

/// Index of residential ASNs grouped by country, for assigning home ASNs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResidentialIndex {
    by_country: HashMap<Country, Vec<AsnId>>,
    fallback: Vec<AsnId>,
}

impl ResidentialIndex {
    /// Build the index from a registry. Every residential ASN participates;
    /// countries with no residential ASN fall back to the global list.
    pub fn build(registry: &AsnRegistry) -> Self {
        let mut by_country: HashMap<Country, Vec<AsnId>> = HashMap::new();
        let mut fallback = Vec::new();
        for a in registry.iter() {
            if a.kind == AsnKind::Residential {
                by_country.entry(a.country).or_default().push(a.id);
                fallback.push(a.id);
            }
        }
        Self { by_country, fallback }
    }

    /// Pick a home ASN for a user in `country`, using `u ∈ [0,1)`.
    ///
    /// # Panics
    /// Panics if no residential ASNs exist at all.
    pub fn pick(&self, country: Country, u: f64) -> AsnId {
        let pool = self
            .by_country
            .get(&country)
            .filter(|v| !v.is_empty())
            .unwrap_or(&self.fallback);
        assert!(!pool.is_empty(), "no residential ASNs registered");
        pool[((u * pool.len() as f64) as usize).min(pool.len() - 1)]
    }
}

/// Handle to the synthesized organic population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    /// Ids of all organic accounts, in creation order.
    pub organic: Vec<AccountId>,
}

impl Population {
    /// Number of organic accounts.
    pub fn len(&self) -> usize {
        self.organic.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.organic.is_empty()
    }

    /// Uniformly sample an organic account id with `u ∈ [0,1)`.
    pub fn sample_uniform(&self, u: f64) -> AccountId {
        assert!(!self.organic.is_empty(), "empty population");
        self.organic[((u * self.organic.len() as f64) as usize).min(self.organic.len() - 1)]
    }
}

/// Sample a log-normal value with the given median and σ.
pub fn sample_lognormal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0);
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (median.ln() + sigma * z).exp()
}

/// Create the organic population in `accounts`.
///
/// Accounts are created at the simulation epoch so that the whole population
/// exists before any measurement window opens.
pub fn synthesize(
    accounts: &mut AccountStore,
    residential: &ResidentialIndex,
    config: &PopulationConfig,
    rng: &mut impl Rng,
) -> Population {
    assert!(config.behavior.is_valid(), "invalid behaviour params");
    let mut organic = Vec::with_capacity(config.size as usize);
    for _ in 0..config.size {
        let country = config.country_mix.sample(rng.gen());
        let home_asn = residential.pick(country, rng.gen());
        let following = sample_lognormal(rng, config.median_following, config.degree_sigma)
            .round()
            .clamp(0.0, 5e6) as u32;
        let followers = sample_lognormal(rng, config.median_followers, config.degree_sigma)
            .round()
            .clamp(0.0, 5e6) as u32;
        let tendency = followback_tendency(following, followers, rng.gen());
        let profile = synthesize_profile(&config.behavior, tendency, rng.gen());
        let id = accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            country,
            home_asn,
            following,
            followers,
            profile,
        );
        organic.push(id);
    }
    Population { organic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::AsnRegistry;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn world() -> (AccountStore, ResidentialIndex) {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(
                &format!("res-{}", c.code()),
                c,
                AsnKind::Residential,
                10_000,
            );
        }
        (AccountStore::new(), ResidentialIndex::build(&reg))
    }

    fn median_u32(mut v: Vec<u32>) -> u32 {
        v.sort_unstable();
        v[v.len() / 2]
    }

    #[test]
    fn degrees_have_requested_medians() {
        let (mut accounts, idx) = world();
        let cfg = PopulationConfig {
            size: 8_000,
            ..PopulationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let pop = synthesize(&mut accounts, &idx, &cfg, &mut rng);
        assert_eq!(pop.len(), 8_000);
        let following: Vec<u32> = pop.organic.iter().map(|&a| accounts.get(a).following).collect();
        let followers: Vec<u32> = pop.organic.iter().map(|&a| accounts.get(a).followers).collect();
        let med_out = f64::from(median_u32(following));
        let med_in = f64::from(median_u32(followers));
        assert!((med_out - 465.0).abs() / 465.0 < 0.10, "median out {med_out}");
        assert!((med_in - 796.0).abs() / 796.0 < 0.10, "median in {med_in}");
    }

    #[test]
    fn country_mix_is_respected() {
        let (mut accounts, idx) = world();
        let cfg = PopulationConfig {
            size: 10_000,
            ..PopulationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let pop = synthesize(&mut accounts, &idx, &cfg, &mut rng);
        let us = pop
            .organic
            .iter()
            .filter(|&&a| accounts.get(a).country == Country::Us)
            .count() as f64
            / pop.len() as f64;
        let expect = cfg.country_mix.probability(Country::Us);
        assert!((us - expect).abs() < 0.02, "US share {us} vs {expect}");
    }

    #[test]
    fn home_asns_match_country() {
        let (mut accounts, idx) = world();
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 10_000);
        }
        let cfg = PopulationConfig {
            size: 500,
            ..PopulationConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let pop = synthesize(&mut accounts, &idx, &cfg, &mut rng);
        for &a in &pop.organic {
            let acct = accounts.get(a);
            assert_eq!(reg.get(acct.home_asn).country, acct.country);
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let run = || {
            let (mut accounts, idx) = world();
            let cfg = PopulationConfig {
                size: 200,
                ..PopulationConfig::default()
            };
            let mut rng = SmallRng::seed_from_u64(42);
            let pop = synthesize(&mut accounts, &idx, &cfg, &mut rng);
            pop.organic
                .iter()
                .map(|&a| {
                    let x = accounts.get(a);
                    (x.following, x.followers, x.country)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<f64> = (0..20_000)
            .map(|_| sample_lognormal(&mut rng, 100.0, 1.0))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[v.len() / 2];
        assert!((med - 100.0).abs() / 100.0 < 0.05, "median {med}");
    }

    #[test]
    fn sample_uniform_bounds() {
        let pop = Population {
            organic: vec![AccountId(0), AccountId(1), AccountId(2)],
        };
        assert_eq!(pop.sample_uniform(0.0), AccountId(0));
        assert_eq!(pop.sample_uniform(0.999_999), AccountId(2));
    }
}
