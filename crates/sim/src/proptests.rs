//! Crate-internal property tests over substrate invariants that span
//! modules (graph × accounts, time arithmetic, country mixes).

#![cfg(test)]

use crate::account::{AccountStore, ProfileKind, ReciprocityProfile};
use crate::country::{Country, CountryMix};
use crate::graph::SocialGraph;
use crate::ids::{AccountId, AsnId};
use crate::time::{Day, SimTime, SECS_PER_DAY};
use proptest::prelude::*;

fn store_with(n: u32) -> AccountStore {
    let mut s = AccountStore::new();
    for _ in 0..n {
        s.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
    }
    s
}

proptest! {
    /// For tracked accounts, degree counters always equal exact-set sizes,
    /// under any interleaving of follow/unfollow operations.
    #[test]
    fn tracked_degrees_match_edge_sets(
        ops in prop::collection::vec((0u32..8, 0u32..8, any::<bool>()), 0..200),
    ) {
        let mut accounts = store_with(8);
        let mut graph = SocialGraph::new();
        for i in 0..8 {
            graph.track(AccountId(i));
        }
        for (from, to, is_follow) in ops {
            let (from, to) = (AccountId(from), AccountId(to));
            if is_follow {
                graph.follow(&mut accounts, from, to);
            } else {
                graph.unfollow(&mut accounts, from, to);
            }
        }
        for i in 0..8 {
            let id = AccountId(i);
            prop_assert_eq!(
                accounts.get(id).followers as usize,
                graph.followers_of(id).len(),
                "followers of {}", id
            );
            prop_assert_eq!(
                accounts.get(id).following as usize,
                graph.following_of(id).len(),
                "following of {}", id
            );
            // No self-edges ever.
            prop_assert!(!graph.followers_of(id).contains(&id));
        }
    }

    /// Purging a tracked account removes every edge touching it and leaves
    /// all counterparties consistent.
    #[test]
    fn purge_is_complete(
        ops in prop::collection::vec((0u32..6, 0u32..6), 0..100),
    ) {
        let mut accounts = store_with(6);
        let mut graph = SocialGraph::new();
        for i in 0..6 {
            graph.track(AccountId(i));
        }
        for (from, to) in ops {
            graph.follow(&mut accounts, AccountId(from), AccountId(to));
        }
        let victim = AccountId(0);
        graph.purge_account(&mut accounts, victim);
        prop_assert!(graph.followers_of(victim).is_empty());
        prop_assert!(graph.following_of(victim).is_empty());
        prop_assert_eq!(accounts.get(victim).followers, 0);
        prop_assert_eq!(accounts.get(victim).following, 0);
        for i in 1..6 {
            let id = AccountId(i);
            prop_assert!(!graph.followers_of(id).contains(&victim));
            prop_assert!(!graph.following_of(id).contains(&victim));
            prop_assert_eq!(accounts.get(id).followers as usize, graph.followers_of(id).len());
        }
    }

    /// Time round-trips: any instant decomposes into (day, second-of-day)
    /// and recomposes exactly; day arithmetic is consistent.
    #[test]
    fn time_decomposition_roundtrips(secs in 0u64..=(u32::MAX as u64) * SECS_PER_DAY / 4096) {
        let t = SimTime(secs);
        let rebuilt = SimTime::from_day_offset(t.day(), t.second_of_day());
        prop_assert_eq!(rebuilt, t);
        prop_assert!(t.second_of_day() < SECS_PER_DAY);
        prop_assert!(u64::from(t.hour_of_day()) == t.second_of_day() / 3_600);
        prop_assert!(t.day().start() <= t);
        prop_assert!(t < t.day().end());
    }

    /// Day ranges partition correctly: |[a,b)| == b - a for a <= b.
    #[test]
    fn day_range_lengths(a in 0u32..10_000, len in 0u32..1_000) {
        let b = a + len;
        prop_assert_eq!(Day::range(Day(a), Day(b)).count() as u32, len);
        prop_assert_eq!(Day(b).days_since(Day(a)), len);
    }

    /// Country mixes always sample a member country and probabilities stay
    /// normalised, for any positive weights.
    #[test]
    fn country_mix_samples_members(
        weights in prop::collection::vec(1u32..1_000, 1..8),
        u in 0.0f64..1.0,
    ) {
        let pairs: Vec<(Country, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (Country::ALL[i % Country::ALL.len()], f64::from(w)))
            .collect();
        let members: Vec<Country> = pairs.iter().map(|(c, _)| *c).collect();
        let mix = CountryMix::new(pairs);
        prop_assert!(members.contains(&mix.sample(u)));
        let total: f64 = Country::ALL.iter().map(|&c| mix.probability(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
