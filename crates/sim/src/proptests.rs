//! Crate-internal property tests over substrate invariants that span
//! modules (graph × accounts, time arithmetic, country mixes).

#![cfg(test)]

use crate::account::{AccountStore, ProfileKind, ReciprocityProfile};
use crate::actions::ActionType;
use crate::apply::DepositOp;
use crate::country::{Country, CountryMix};
use crate::enforcement::{
    Countermeasure, EnforcementContext, EnforcementDecision, EnforcementPolicy,
};
use crate::graph::SocialGraph;
use crate::ids::{AccountId, AsnId, MediaId, ServiceId};
use crate::net::{AsnKind, AsnRegistry};
use crate::platform::{Platform, PlatformConfig};
use crate::time::{Day, SimTime, SECS_PER_DAY};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn store_with(n: u32) -> AccountStore {
    let mut s = AccountStore::new();
    for _ in 0..n {
        s.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
    }
    s
}

/// A deterministic policy that exercises every enforcement arm the sharded
/// apply phase has to reproduce: thresholds against `prior_today`, both
/// countermeasures, and per-account experiment bins.
#[derive(Debug)]
struct BinnedMixedPolicy {
    threshold: u32,
}

impl EnforcementPolicy for BinnedMixedPolicy {
    fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
        let cm = match ctx.action {
            ActionType::Follow => Countermeasure::DelayRemoval,
            _ => Countermeasure::Block,
        };
        EnforcementDecision::threshold(ctx.requested, ctx.prior_today, self.threshold, cm)
            .with_bin(ctx.actor.0 % 3)
    }
}

/// A small world for apply-phase equivalence tests: `n` organic accounts,
/// one media post each, an enforcement policy with teeth, and the clock on
/// `Day(0)`. Built fresh (same seed) for each apply variant so the serial
/// and sharded runs start from byte-identical state.
fn apply_world(n: u32, threshold: u32) -> (Platform, Vec<MediaId>) {
    let mut reg = AsnRegistry::new();
    reg.register("res-us", Country::Us, AsnKind::Residential, 100_000);
    reg.register("host-a", Country::Us, AsnKind::Hosting, 1_000);
    reg.register("host-b", Country::Us, AsnKind::Hosting, 1_000);
    let mut p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(0xF00D));
    for _ in 0..n {
        p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            10,
            10,
            ReciprocityProfile::SILENT,
        );
    }
    p.set_policy(Box::new(BinnedMixedPolicy { threshold }));
    p.begin_day(Day(0));
    let media = (0..n)
        .map(|i| p.post_media(AccountId(i), AsnId(0), p.asns.ip_in(AsnId(0), i)))
        .collect();
    (p, media)
}

/// Raw op tuples from proptest, turned into [`DepositOp`]s against a world
/// of `n` accounts. Zero-quantity ops, repeated `(target, asn)` keys (so
/// `prior_today` matters) and media-targeted likes are all in range.
fn build_ops(raw: &[(u32, u8, u32, u8, bool, u32)], n: u32, media: &[MediaId]) -> Vec<DepositOp> {
    raw.iter()
        .map(|&(target, ty, requested, asn, with_media, cap)| {
            let target = target % n;
            let ty = match ty % 3 {
                0 => ActionType::Like,
                1 => ActionType::Follow,
                _ => ActionType::Comment,
            };
            let media = (with_media && ty != ActionType::Follow)
                .then(|| (media[target as usize], cap.max(1)));
            DepositOp {
                target: AccountId(target),
                ty,
                requested,
                asn: AsnId(1 + u32::from(asn % 2)),
                service: Some(ServiceId::ALL[target as usize % ServiceId::ALL.len()]),
                media,
            }
        })
        .collect()
}

proptest! {
    /// The sharded apply phase is observationally identical to the serial
    /// `deposit_inbound_enforced` ladder: same per-op [`BatchResult`]s, the
    /// same platform state JSON (log, arenas, pending queues, counters,
    /// RNG stream), and a byte-identical metrics snapshot — for every
    /// shard count, including counts that do not divide the roster.
    #[test]
    fn sharded_apply_matches_serial_reference(
        raw in prop::collection::vec(
            (0u32..12, any::<u8>(), 0u32..40, any::<u8>(), any::<bool>(), 1u32..30),
            0..60,
        ),
        threshold in 0u32..25,
    ) {
        const N: u32 = 12;
        let (mut serial, media) = apply_world(N, threshold);
        let ops = build_ops(&raw, N, &media);
        let want: Vec<_> = ops
            .iter()
            .map(|op| {
                serial.deposit_inbound_enforced(
                    op.target, op.ty, op.requested, op.asn, op.service, op.media,
                )
            })
            .collect();
        let want_state = serde_json::to_string(&serial).expect("platform serializes");
        let want_metrics = serial.obs.metrics.snapshot().to_json();

        for shards in [1usize, 2, 3, 7] {
            let (mut sharded, _) = apply_world(N, threshold);
            let got = sharded.apply_deposits_sharded(&ops, shards, "test.apply.shard");
            prop_assert_eq!(&got, &want, "BatchResults diverged at {} shards", shards);
            let got_state = serde_json::to_string(&sharded).expect("platform serializes");
            prop_assert_eq!(&got_state, &want_state, "platform JSON diverged at {} shards", shards);
            let got_metrics = sharded.obs.metrics.snapshot().to_json();
            prop_assert_eq!(&got_metrics, &want_metrics, "metrics diverged at {} shards", shards);
        }
    }

    /// For tracked accounts, degree counters always equal exact-set sizes,
    /// under any interleaving of follow/unfollow operations.
    #[test]
    fn tracked_degrees_match_edge_sets(
        ops in prop::collection::vec((0u32..8, 0u32..8, any::<bool>()), 0..200),
    ) {
        let mut accounts = store_with(8);
        let mut graph = SocialGraph::new();
        for i in 0..8 {
            graph.track(AccountId(i));
        }
        for (from, to, is_follow) in ops {
            let (from, to) = (AccountId(from), AccountId(to));
            if is_follow {
                graph.follow(&mut accounts, from, to);
            } else {
                graph.unfollow(&mut accounts, from, to);
            }
        }
        for i in 0..8 {
            let id = AccountId(i);
            prop_assert_eq!(
                accounts.get(id).followers as usize,
                graph.followers_of(id).len(),
                "followers of {}", id
            );
            prop_assert_eq!(
                accounts.get(id).following as usize,
                graph.following_of(id).len(),
                "following of {}", id
            );
            // No self-edges ever.
            prop_assert!(!graph.followers_of(id).contains(&id));
        }
    }

    /// Purging a tracked account removes every edge touching it and leaves
    /// all counterparties consistent.
    #[test]
    fn purge_is_complete(
        ops in prop::collection::vec((0u32..6, 0u32..6), 0..100),
    ) {
        let mut accounts = store_with(6);
        let mut graph = SocialGraph::new();
        for i in 0..6 {
            graph.track(AccountId(i));
        }
        for (from, to) in ops {
            graph.follow(&mut accounts, AccountId(from), AccountId(to));
        }
        let victim = AccountId(0);
        graph.purge_account(&mut accounts, victim);
        prop_assert!(graph.followers_of(victim).is_empty());
        prop_assert!(graph.following_of(victim).is_empty());
        prop_assert_eq!(accounts.get(victim).followers, 0);
        prop_assert_eq!(accounts.get(victim).following, 0);
        for i in 1..6 {
            let id = AccountId(i);
            prop_assert!(!graph.followers_of(id).contains(&victim));
            prop_assert!(!graph.following_of(id).contains(&victim));
            prop_assert_eq!(accounts.get(id).followers as usize, graph.followers_of(id).len());
        }
    }

    /// Time round-trips: any instant decomposes into (day, second-of-day)
    /// and recomposes exactly; day arithmetic is consistent.
    #[test]
    fn time_decomposition_roundtrips(secs in 0u64..=(u32::MAX as u64) * SECS_PER_DAY / 4096) {
        let t = SimTime(secs);
        let rebuilt = SimTime::from_day_offset(t.day(), t.second_of_day());
        prop_assert_eq!(rebuilt, t);
        prop_assert!(t.second_of_day() < SECS_PER_DAY);
        prop_assert!(u64::from(t.hour_of_day()) == t.second_of_day() / 3_600);
        prop_assert!(t.day().start() <= t);
        prop_assert!(t < t.day().end());
    }

    /// Day ranges partition correctly: |[a,b)| == b - a for a <= b.
    #[test]
    fn day_range_lengths(a in 0u32..10_000, len in 0u32..1_000) {
        let b = a + len;
        prop_assert_eq!(Day::range(Day(a), Day(b)).count() as u32, len);
        prop_assert_eq!(Day(b).days_since(Day(a)), len);
    }

    /// Country mixes always sample a member country and probabilities stay
    /// normalised, for any positive weights.
    #[test]
    fn country_mix_samples_members(
        weights in prop::collection::vec(1u32..1_000, 1..8),
        u in 0.0f64..1.0,
    ) {
        let pairs: Vec<(Country, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (Country::ALL[i % Country::ALL.len()], f64::from(w)))
            .collect();
        let members: Vec<Country> = pairs.iter().map(|(c, _)| *c).collect();
        let mix = CountryMix::new(pairs);
        prop_assert!(members.contains(&mix.sample(u)));
        let total: f64 = Country::ALL.iter().map(|&c| mix.probability(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
