//! Rate limiting primitives.
//!
//! Two parties rate-limit in this system, with the same primitives:
//!
//! * the **platform** rate-limits its public OAuth API aggressively enough
//!   that broad abuse through it is impossible (§2) — which is why AASs
//!   spoof the private mobile API instead;
//! * the **services** rate-limit their own free tiers (Hublaagram's
//!   30-minute timeout between free requests and 160 likes/hour free
//!   delivery cap, §3.3.2/§5.2).

use crate::time::{SimTime, SECS_PER_HOUR};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Fixed-window counter limiter: at most `limit` permitted events per key in
/// any window of `window_secs` seconds (windows are aligned to multiples of
/// the window length, which is how production quota systems typically work).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedWindowLimiter<K: Eq + Hash> {
    limit: u32,
    window_secs: u64,
    #[serde(skip)]
    state: HashMap<K, WindowState>,
}

#[derive(Debug, Clone, Copy)]
struct WindowState {
    window_index: u64,
    used: u32,
}

impl<K: Eq + Hash + Clone> FixedWindowLimiter<K> {
    /// Create a limiter allowing `limit` events per `window_secs` window.
    pub fn new(limit: u32, window_secs: u64) -> Self {
        assert!(window_secs > 0, "window must be positive");
        Self {
            limit,
            window_secs,
            state: HashMap::new(),
        }
    }

    /// Convenience: `limit` events per hour.
    pub fn per_hour(limit: u32) -> Self {
        Self::new(limit, SECS_PER_HOUR)
    }

    /// The configured per-window limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Try to consume `n` units for `key` at time `now`. Returns how many
    /// units were granted (all-or-nothing is a policy choice of the caller;
    /// partial grants are what the platform edge does — it serves requests
    /// until quota is gone).
    pub fn acquire(&mut self, key: &K, now: SimTime, n: u32) -> u32 {
        let window_index = now.0 / self.window_secs;
        let st = self
            .state
            .entry(key.clone())
            .or_insert(WindowState { window_index, used: 0 });
        if st.window_index != window_index {
            st.window_index = window_index;
            st.used = 0;
        }
        let granted = n.min(self.limit.saturating_sub(st.used));
        st.used += granted;
        granted
    }

    /// Units still available for `key` in the window containing `now`.
    pub fn remaining(&self, key: &K, now: SimTime) -> u32 {
        let window_index = now.0 / self.window_secs;
        match self.state.get(key) {
            Some(st) if st.window_index == window_index => self.limit.saturating_sub(st.used),
            _ => self.limit,
        }
    }

    /// Drop all per-key state (e.g. between simulated experiments).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

/// [`FixedWindowLimiter`] over dense integer keys (account ids): per-key
/// state lives in a `Vec` indexed by `key.index()`, so the platform's
/// per-action quota check is hash-free. Window bookkeeping is identical to
/// the generic limiter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseWindowLimiter {
    limit: u32,
    window_secs: u64,
    #[serde(skip)]
    state: Vec<WindowState>,
}

impl DenseWindowLimiter {
    /// Create a limiter allowing `limit` events per `window_secs` window.
    pub fn new(limit: u32, window_secs: u64) -> Self {
        assert!(window_secs > 0, "window must be positive");
        Self {
            limit,
            window_secs,
            state: Vec::new(),
        }
    }

    /// Convenience: `limit` events per hour.
    pub fn per_hour(limit: u32) -> Self {
        Self::new(limit, SECS_PER_HOUR)
    }

    /// The configured per-window limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Try to consume `n` units for the key at dense index `key` at time
    /// `now`. Returns how many units were granted.
    pub fn acquire(&mut self, key: usize, now: SimTime, n: u32) -> u32 {
        let window_index = now.0 / self.window_secs;
        if key >= self.state.len() {
            self.state.resize(
                key + 1,
                WindowState { window_index: u64::MAX, used: 0 },
            );
        }
        let st = &mut self.state[key];
        if st.window_index != window_index {
            st.window_index = window_index;
            st.used = 0;
        }
        let granted = n.min(self.limit.saturating_sub(st.used));
        st.used += granted;
        granted
    }

    /// Units still available for `key` in the window containing `now`.
    pub fn remaining(&self, key: usize, now: SimTime) -> u32 {
        let window_index = now.0 / self.window_secs;
        match self.state.get(key) {
            Some(st) if st.window_index == window_index => self.limit.saturating_sub(st.used),
            _ => self.limit,
        }
    }

    /// Drop all per-key state (e.g. between simulated experiments).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

/// Cooldown limiter: a key may act at most once every `cooldown_secs`
/// seconds. Models Hublaagram's "30-minute timeout between requests".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CooldownLimiter<K: Eq + Hash> {
    cooldown_secs: u64,
    #[serde(skip)]
    last: HashMap<K, SimTime>,
}

impl<K: Eq + Hash + Clone> CooldownLimiter<K> {
    /// Create a limiter with the given cooldown.
    pub fn new(cooldown_secs: u64) -> Self {
        assert!(cooldown_secs > 0, "cooldown must be positive");
        Self {
            cooldown_secs,
            last: HashMap::new(),
        }
    }

    /// Attempt an action for `key` at `now`. Returns `true` (and starts the
    /// cooldown) if allowed.
    pub fn try_acquire(&mut self, key: &K, now: SimTime) -> bool {
        match self.last.get(key) {
            Some(&prev) if now.secs_since(prev) < self.cooldown_secs => false,
            _ => {
                self.last.insert(key.clone(), now);
                true
            }
        }
    }

    /// Seconds until `key` may act again (zero if allowed now).
    pub fn retry_after(&self, key: &K, now: SimTime) -> u64 {
        match self.last.get(key) {
            Some(&prev) => self.cooldown_secs.saturating_sub(now.secs_since(prev)),
            None => 0,
        }
    }

    /// Drop all per-key state.
    pub fn reset(&mut self) {
        self.last.clear();
    }
}

/// The platform's public (OAuth) API quota.
///
/// The exact production numbers don't matter; what matters for fidelity is
/// that the quota is *far below* what any AAS needs (hundreds of actions per
/// account per day), making the public API a non-option and pushing services
/// to spoofed private-API traffic, which is what the fingerprint signals
/// then catch.
pub fn public_api_quota() -> DenseWindowLimiter {
    // 30 writes per account-hour, in line with the published sandbox limits
    // of the era.
    DenseWindowLimiter::per_hour(30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AccountId;

    #[test]
    fn fixed_window_grants_until_exhausted() {
        let mut l = FixedWindowLimiter::per_hour(10);
        let k = AccountId(1);
        let t = SimTime(0);
        assert_eq!(l.acquire(&k, t, 4), 4);
        assert_eq!(l.acquire(&k, t, 4), 4);
        assert_eq!(l.acquire(&k, t, 4), 2, "partial grant at the edge");
        assert_eq!(l.acquire(&k, t, 4), 0);
        assert_eq!(l.remaining(&k, t), 0);
    }

    #[test]
    fn fixed_window_resets_on_new_window() {
        let mut l = FixedWindowLimiter::per_hour(5);
        let k = AccountId(1);
        assert_eq!(l.acquire(&k, SimTime(10), 5), 5);
        // Same window: refused.
        assert_eq!(l.acquire(&k, SimTime(3_599), 1), 0);
        // Next hour window: fresh quota.
        assert_eq!(l.acquire(&k, SimTime(3_600), 5), 5);
    }

    #[test]
    fn fixed_window_keys_are_independent() {
        let mut l = FixedWindowLimiter::per_hour(2);
        let t = SimTime(0);
        assert_eq!(l.acquire(&AccountId(1), t, 2), 2);
        assert_eq!(l.acquire(&AccountId(2), t, 2), 2);
    }

    #[test]
    fn cooldown_blocks_until_elapsed() {
        let mut c = CooldownLimiter::new(1_800);
        let k = AccountId(3);
        assert!(c.try_acquire(&k, SimTime(0)));
        assert!(!c.try_acquire(&k, SimTime(100)));
        assert_eq!(c.retry_after(&k, SimTime(100)), 1_700);
        assert!(!c.try_acquire(&k, SimTime(1_799)));
        assert!(c.try_acquire(&k, SimTime(1_800)));
        assert_eq!(c.retry_after(&k, SimTime(1_800)), 1_800);
    }

    #[test]
    fn cooldown_fresh_key_allowed_immediately() {
        let mut c = CooldownLimiter::new(60);
        assert_eq!(c.retry_after(&AccountId(9), SimTime(0)), 0);
        assert!(c.try_acquire(&AccountId(9), SimTime(0)));
    }

    #[test]
    fn public_api_quota_is_too_small_for_abuse() {
        // An AAS needs hundreds of actions per account-day; the public API
        // tops out at 30/hour = 720/day *of quota*, but burst delivery (e.g.
        // 2,000 likes "immediately", Table 3) is impossible.
        let mut q = public_api_quota();
        let got = q.acquire(AccountId(1).index(), SimTime(0), 2_000);
        assert!(got <= 30);
    }

    #[test]
    fn reset_clears_state() {
        let mut l = FixedWindowLimiter::per_hour(1);
        let k = AccountId(1);
        assert_eq!(l.acquire(&k, SimTime(0), 1), 1);
        l.reset();
        assert_eq!(l.acquire(&k, SimTime(0), 1), 1);
    }
}
