//! Deterministic random-number plumbing.
//!
//! Reproducibility is a hard requirement: the paper's findings are the output
//! of a measurement pipeline, and we want *bit-identical* tables and figures
//! for a given scenario seed so that EXPERIMENTS.md stays truthful across
//! runs and machines.
//!
//! The design follows the "stream per component" idiom: a single `u64`
//! scenario seed is mixed with a stable string label (and optionally a
//! numeric sub-stream) to derive an independent [`SmallRng`] for each
//! component. Components never share RNGs, so adding a new consumer of
//! randomness does not perturb existing streams — the property that keeps
//! experiment diffs reviewable as the codebase grows.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A factory for per-component deterministic RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Create a factory from the scenario seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The scenario seed this factory was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent RNG for the component identified by `label`.
    ///
    /// Labels must be stable across versions (they are part of the
    /// reproducibility contract); use lowercase dotted paths such as
    /// `"sim.population"` or `"aas.boostgram.targeting"`.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.seed, hash_label(label)))
    }

    /// Derive an RNG for a numbered sub-stream of a component, e.g. one
    /// stream per account or per day. Stable for the same `(label, n)`.
    pub fn substream(&self, label: &str, n: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix(mix(self.seed, hash_label(label)), n))
    }

    /// Derive the labelled RNG stream for one worker shard of a parallel
    /// phase. The tag constant keeps shard streams disjoint from
    /// [`RngFactory::substream`] numbering under the same label.
    ///
    /// Note the determinism contract of the three-phase engine (DESIGN.md
    /// §4): the sharded *apply* phase is draw-free — every quantity a shard
    /// worker needs was fixed during plan/route — because any draw keyed by
    /// shard index would make results depend on `FOOTSTEPS_THREADS`. Shard
    /// streams exist for work that is *quarantined from deterministic
    /// output* (randomized micro-benchmark workloads, stress harnesses):
    /// they give each worker an independent, reproducible stream for a
    /// given `(seed, label, shard)` without contending on a shared RNG.
    pub fn shard_stream(&self, label: &str, shard: u64) -> SmallRng {
        const SHARD_TAG: u64 = 0x51a7_ded0_a711_15e5;
        SmallRng::seed_from_u64(mix(
            mix(self.seed, hash_label(label)),
            shard ^ SHARD_TAG,
        ))
    }

    /// The raw 64-bit seed of the stream identified by `label` — the value
    /// `stream(label)` is seeded from. Components that need to derive many
    /// per-entity streams (the parallel decision phase derives one per
    /// account-day) keep this seed and feed it to [`decision_rng`] instead
    /// of holding a factory.
    pub fn stream_seed(&self, label: &str) -> u64 {
        mix(self.seed, hash_label(label))
    }
}

/// Derive the decision RNG for one `(entity, day)` pair of a component.
///
/// This is the randomness contract of the two-phase daily engine (DESIGN.md
/// §4): every per-entity decision draw comes from a stream that is a pure
/// function of `(scenario seed, stream label, entity id, day)` — obtained
/// here as `mix(mix(stream_seed, entity), day)` — and never from a shared
/// sequential stream. Because the stream does not depend on the order in
/// which entities are processed, the decision phase can be sharded across
/// any number of worker threads and still produce byte-identical results.
pub fn decision_rng(stream_seed: u64, entity: u64, day: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix(mix(stream_seed, entity), day))
}

/// FNV-1a over the label bytes. Cheap, stable, and collision-resistant
/// enough for a handful of component labels (collisions are further mixed
/// with the seed via `mix`).
fn hash_label(label: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finaliser: a high-quality 64-bit mixer used to combine the
/// seed with stream identifiers.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically hash an arbitrary 64-bit key into a bin in `0..bins`.
///
/// Used by the intervention machinery to partition accounts into ten
/// equally-sized bins (§6.3): the partition must be deterministic (the same
/// account always lands in the same bin) and uncorrelated with account
/// creation order or service membership.
pub fn stable_bin(key: u64, bins: u32) -> u32 {
    assert!(bins > 0, "bins must be positive");
    // Multiply-shift after mixing gives an unbiased-enough mapping for our
    // bin counts (10) without modulo bias concerns.
    (mix(key, 0xabcd_ef01_2345_6789) % u64::from(bins)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("sim.population").gen();
        let b: u64 = f.stream("sim.population").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("sim.population").gen();
        let b: u64 = f.stream("sim.behavior").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let f = RngFactory::new(99);
        let a1: u64 = f.substream("acct", 1).gen();
        let a2: u64 = f.substream("acct", 2).gen();
        let a1_again: u64 = f.substream("acct", 1).gen();
        assert_ne!(a1, a2);
        assert_eq!(a1, a1_again);
    }

    #[test]
    fn stream_seed_matches_stream() {
        let f = RngFactory::new(41);
        let via_seed: u64 = SmallRng::seed_from_u64(f.stream_seed("aas.x")).gen();
        let via_stream: u64 = f.stream("aas.x").gen();
        assert_eq!(via_seed, via_stream);
    }

    #[test]
    fn decision_rng_is_stable_and_distinguishes_entity_and_day() {
        let s = RngFactory::new(7).stream_seed("aas.x.decide");
        let a: u64 = decision_rng(s, 10, 3).gen();
        assert_eq!(a, decision_rng(s, 10, 3).gen(), "same (entity, day) → same stream");
        assert_ne!(a, decision_rng(s, 11, 3).gen(), "entity perturbs the stream");
        assert_ne!(a, decision_rng(s, 10, 4).gen(), "day perturbs the stream");
    }

    #[test]
    fn shard_streams_are_stable_disjoint_and_label_scoped() {
        let f = RngFactory::new(7);
        let a: u64 = f.shard_stream("engine.apply", 0).gen();
        assert_eq!(a, f.shard_stream("engine.apply", 0).gen(), "stable");
        assert_ne!(a, f.shard_stream("engine.apply", 1).gen(), "shard-scoped");
        assert_ne!(a, f.shard_stream("engine.plan", 0).gen(), "label-scoped");
        // Disjoint from substream numbering under the same label.
        assert_ne!(a, f.substream("engine.apply", 0).gen());
    }

    #[test]
    fn stable_bin_is_deterministic_and_in_range() {
        for key in 0..1_000u64 {
            let b = stable_bin(key, 10);
            assert!(b < 10);
            assert_eq!(b, stable_bin(key, 10));
        }
    }

    #[test]
    fn stable_bin_is_roughly_uniform() {
        let mut counts = [0u32; 10];
        let n = 100_000u64;
        for key in 0..n {
            counts[stable_bin(key, 10) as usize] += 1;
        }
        let expect = n as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.05, "bin {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bins must be positive")]
    fn stable_bin_rejects_zero_bins() {
        stable_bin(1, 0);
    }
}
