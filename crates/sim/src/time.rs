//! Simulated time.
//!
//! The study is organised around *days* (the measurement pipeline aggregates
//! per-account activity daily, and thresholds/countermeasures are defined on
//! daily counts), but several mechanisms need sub-day resolution:
//!
//! * Hublaagram's free tier is limited to two requests per **hour** and paid
//!   customers are identified by exceeding **160 likes per hour** on a photo;
//! * trial periods end mid-day ("no more than 12 hours beyond the expected
//!   end time", §4.2);
//! * honeypot event streams carry timestamps.
//!
//! We therefore model time as whole **seconds** since the simulation epoch,
//! with convenience types for days and hours layered on top. There is no
//! wall-clock anywhere: time only advances when the engine steps it.

use serde::{Deserialize, Serialize};

/// Seconds in a minute/hour/day, as plain constants to keep arithmetic
/// readable at call sites.
pub const SECS_PER_MINUTE: u64 = 60;
/// Seconds per hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;
/// Hours per day.
pub const HOURS_PER_DAY: u64 = 24;

/// An instant in simulated time: whole seconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (midnight of day 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from a day number and a second-of-day offset.
    pub fn from_day_offset(day: Day, offset_secs: u64) -> Self {
        debug_assert!(offset_secs < SECS_PER_DAY, "offset must be within a day");
        SimTime(day.0 as u64 * SECS_PER_DAY + offset_secs)
    }

    /// The day this instant falls in.
    #[inline]
    pub fn day(self) -> Day {
        Day((self.0 / SECS_PER_DAY) as u32)
    }

    /// The hour-of-day (0..24) this instant falls in.
    #[inline]
    pub fn hour_of_day(self) -> u8 {
        ((self.0 % SECS_PER_DAY) / SECS_PER_HOUR) as u8
    }

    /// Seconds elapsed since the start of the day.
    #[inline]
    pub fn second_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// This instant shifted forward by `secs` seconds.
    #[inline]
    pub fn plus_secs(self, secs: u64) -> Self {
        SimTime(self.0 + secs)
    }

    /// This instant shifted forward by `hours` hours.
    #[inline]
    pub fn plus_hours(self, hours: u64) -> Self {
        SimTime(self.0 + hours * SECS_PER_HOUR)
    }

    /// This instant shifted forward by `days` days.
    #[inline]
    pub fn plus_days(self, days: u64) -> Self {
        SimTime(self.0 + days * SECS_PER_DAY)
    }

    /// Whole seconds between two instants (`self - earlier`), saturating.
    #[inline]
    pub fn secs_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.day().0;
        let s = self.second_of_day();
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            d,
            s / SECS_PER_HOUR,
            (s % SECS_PER_HOUR) / SECS_PER_MINUTE,
            s % SECS_PER_MINUTE
        )
    }
}

/// A whole simulated day (0-based since the epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Day(pub u32);

impl Day {
    /// Midnight at the start of this day.
    #[inline]
    pub fn start(self) -> SimTime {
        SimTime(self.0 as u64 * SECS_PER_DAY)
    }

    /// Midnight at the start of the next day (exclusive end of this day).
    #[inline]
    pub fn end(self) -> SimTime {
        SimTime((self.0 as u64 + 1) * SECS_PER_DAY)
    }

    /// The following day.
    #[inline]
    pub fn next(self) -> Day {
        Day(self.0 + 1)
    }

    /// This day shifted forward by `n` days.
    #[inline]
    pub fn plus(self, n: u32) -> Day {
        Day(self.0 + n)
    }

    /// Whole days between two days (`self - earlier`), saturating at zero.
    #[inline]
    pub fn days_since(self, earlier: Day) -> u32 {
        self.0.saturating_sub(earlier.0)
    }

    /// Iterate all days in `[start, end)`.
    pub fn range(start: Day, end: Day) -> impl Iterator<Item = Day> {
        (start.0..end.0).map(Day)
    }
}

impl std::fmt::Display for Day {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "day {}", self.0)
    }
}

/// The simulation clock.
///
/// The clock is owned by the platform engine; components read it and only the
/// engine advances it. Advancing backwards is a programming error and panics
/// in debug builds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at the simulation epoch.
    pub fn new() -> Self {
        Self { now: SimTime::EPOCH }
    }

    /// Current instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current day.
    #[inline]
    pub fn today(&self) -> Day {
        self.now.day()
    }

    /// Advance the clock to `t`. Must not move backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "clock moved backwards: {} -> {}", self.now, t);
        self.now = t;
    }

    /// Advance the clock by `secs` seconds.
    pub fn advance_secs(&mut self, secs: u64) {
        self.now = self.now.plus_secs(secs);
    }

    /// Jump to the start of the given day (must not move backwards).
    pub fn advance_to_day(&mut self, day: Day) {
        self.advance_to(day.start());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_and_hour_extraction() {
        let t = SimTime::from_day_offset(Day(3), 7 * SECS_PER_HOUR + 125);
        assert_eq!(t.day(), Day(3));
        assert_eq!(t.hour_of_day(), 7);
        assert_eq!(t.second_of_day(), 7 * SECS_PER_HOUR + 125);
    }

    #[test]
    fn day_boundaries_are_half_open() {
        let d = Day(5);
        assert_eq!(d.start().day(), d);
        assert_eq!(d.end(), d.next().start());
        // The last second of day 5 is still day 5.
        assert_eq!(SimTime(d.end().0 - 1).day(), d);
    }

    #[test]
    fn arithmetic_helpers() {
        let t = SimTime::EPOCH.plus_days(2).plus_hours(3).plus_secs(4);
        assert_eq!(t.0, 2 * SECS_PER_DAY + 3 * SECS_PER_HOUR + 4);
        assert_eq!(t.secs_since(SimTime::EPOCH.plus_days(2)), 3 * SECS_PER_HOUR + 4);
        assert_eq!(SimTime::EPOCH.secs_since(t), 0, "saturates");
        assert_eq!(Day(10).days_since(Day(4)), 6);
        assert_eq!(Day(4).days_since(Day(10)), 0, "saturates");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance_secs(10);
        c.advance_to_day(Day(1));
        assert_eq!(c.today(), Day(1));
        assert_eq!(c.now(), Day(1).start());
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    #[cfg(debug_assertions)]
    fn clock_rejects_backwards() {
        let mut c = SimClock::new();
        c.advance_to_day(Day(2));
        c.advance_to(SimTime::EPOCH);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_day_offset(Day(1), 3_723);
        assert_eq!(t.to_string(), "d1+01:02:03");
        assert_eq!(Day(7).to_string(), "day 7");
    }

    #[test]
    fn day_range_iterates_half_open() {
        let days: Vec<Day> = Day::range(Day(2), Day(5)).collect();
        assert_eq!(days, vec![Day(2), Day(3), Day(4)]);
        assert_eq!(Day::range(Day(3), Day(3)).count(), 0);
    }
}
