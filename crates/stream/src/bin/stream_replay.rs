//! `stream-replay` — re-run a recorded platform event log through the
//! online detector, offline.
//!
//! ```text
//! stream-replay LOG.jsonl [--json]
//! ```
//!
//! Prints the replayed verdict digest (and summary counters). The digest
//! is byte-identical to the digest the inline run froze while recording
//! the log — CI's stream gate asserts exactly that.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path: Option<PathBuf> = None;
    let mut json = false;
    for arg in args.by_ref() {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: stream-replay LOG.jsonl [--json]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: stream-replay LOG.jsonl [--json]");
        return ExitCode::FAILURE;
    };

    let outcome = match footsteps_stream::replay(&path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stream-replay: {e}");
            return ExitCode::FAILURE;
        }
    };

    let verdicts = &outcome.verdicts;
    if json {
        // Small enough to assemble by hand; keys sorted for stable output.
        println!(
            "{{\"schema_version\": {}, \"frozen_on\": {}, \"batches\": {}, \"events\": {}, \
             \"signatures\": {}, \"customers\": {}, \"thresholds\": {}, \
             \"verdict_digest\": \"0x{:016x}\"}}",
            verdicts.schema_version,
            verdicts.frozen_on.0,
            outcome.batches,
            outcome.events_processed,
            verdicts.signatures.len(),
            verdicts
                .classification
                .customers
                .values()
                .map(|s| s.len())
                .sum::<usize>(),
            verdicts.thresholds.len(),
            outcome.verdict_digest,
        );
    } else {
        println!("schema_version: {}", verdicts.schema_version);
        println!("frozen_on: day {}", verdicts.frozen_on.0);
        println!("batches: {}", outcome.batches);
        println!("events: {}", outcome.events_processed);
        println!("signatures: {}", verdicts.signatures.len());
        for sig in &verdicts.signatures {
            println!(
                "  {}: {} asn(s), {} fingerprint(s){}",
                sig.service.slug(),
                sig.asns.len(),
                sig.fingerprints.len(),
                if sig.collusion { ", collusion" } else { "" }
            );
        }
        println!("thresholds: {}", verdicts.thresholds.len());
        println!("verdict_digest: 0x{:016x}", outcome.verdict_digest);
    }
    ExitCode::SUCCESS
}
