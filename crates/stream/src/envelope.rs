//! The recorded event-log envelope: a versioned JSONL file with one
//! header line followed by one [`EventBatch`] line per simulated day.
//!
//! The format is deliberately close to the sweep checkpoint discipline
//! (DESIGN.md §7): a `schema_version` field guards every read, writes go
//! to a `.tmp` sibling and are atomically renamed into place on finish,
//! and corruption surfaces as a typed error instead of a panic. The
//! header carries everything a replay needs to rebuild the online
//! detector from scratch — the honeypot roster, the calibration window,
//! and the seed — so a recorded log is self-contained.
//!
//! The `recorded_unix` stamp is wall-clock bookkeeping for humans (like
//! the sweep manifest's job stamps); it never feeds a digest or a
//! detector decision, which is why this file carries the scoped
//! wall-clock lint exemption.

use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// Version stamp written into every log header. Bump on any change to the
/// header or batch schema; readers refuse mismatched logs.
pub const STREAM_SCHEMA_VERSION: u32 = 1;

/// Errors from recording or replaying an event log.
#[derive(Debug)]
pub enum StreamError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file exists but does not parse as a log of the expected shape.
    Corrupt(String),
    /// The log was written by a different schema version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// The stream ended before the calibration window closed, so there are
    /// no frozen verdicts to hand back.
    Incomplete {
        /// The first day the detector never received.
        reached: Day,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "event-log I/O error: {e}"),
            StreamError::Corrupt(msg) => write!(f, "corrupt event log: {msg}"),
            StreamError::VersionMismatch { found, expected } => write!(
                f,
                "event-log schema version {found}, this binary expects {expected}"
            ),
            StreamError::Incomplete { reached } => write!(
                f,
                "stream ended at day {} before the calibration window closed",
                reached.0
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// One honeypot the online detector watches: the detector's only ground
/// truth, mirroring what `detect::extract_signature` reads from the
/// framework (account, its home ASN for the management-traffic skip rule,
/// and the service it was enrolled with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RosterEntry {
    /// The honeypot account.
    pub account: AccountId,
    /// Its home ASN (first-party management traffic comes from here).
    pub home_asn: AsnId,
    /// The service the honeypot was enrolled with.
    pub service: ServiceId,
}

/// The first line of a recorded log: everything replay needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHeader {
    /// Schema stamp, checked on read.
    pub schema_version: u32,
    /// Scenario seed, for provenance.
    pub seed: u64,
    /// First day of the threshold calibration window.
    pub calibration_start: Day,
    /// End (exclusive) of the calibration window; the detector freezes its
    /// verdicts when this day is reached.
    pub calibration_end: Day,
    /// Length of the sliding sample window, in days.
    pub window_days: u32,
    /// The honeypot roster the detector matches signatures from.
    pub roster: Vec<RosterEntry>,
    /// Unix seconds when recording started. Human bookkeeping only.
    pub recorded_unix: u64,
}

impl LogHeader {
    /// A header for a fresh recording, stamped with the current wall time.
    pub fn new(
        seed: u64,
        calibration_start: Day,
        calibration_end: Day,
        window_days: u32,
        roster: Vec<RosterEntry>,
    ) -> Self {
        let recorded_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self {
            schema_version: STREAM_SCHEMA_VERSION,
            seed,
            calibration_start,
            calibration_end,
            window_days,
            roster,
            recorded_unix,
        }
    }
}

/// One login observation aggregated per day: `account` logged in via
/// `asn` `count` times during the batch's day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoginRecord {
    /// The account that logged in.
    pub account: AccountId,
    /// The ASN the login came from.
    pub asn: AsnId,
    /// Number of logins that day.
    pub count: u32,
}

/// Everything the platform emitted for one day, in canonical (sorted) key
/// order so the recorded bytes — and therefore the replayed verdicts —
/// are identical for any `FOOTSTEPS_THREADS`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    /// The day this batch covers.
    pub day: Day,
    /// Per `(account, asn, fingerprint)` outbound tallies, sorted by key.
    /// [`TypeCounts`] carries the enforcement outcome of every attempt
    /// (delivered/blocked/deferred/rate-limited) per action type.
    pub outbound: Vec<(OutboundKey, TypeCounts)>,
    /// Per `(recipient, source)` inbound tallies, sorted by key.
    pub inbound: Vec<((AccountId, Option<AsnId>), TypeCounts)>,
    /// Logins observed during the day, sorted by `(account, asn)`.
    pub logins: Vec<LoginRecord>,
    /// Full events of tracked (honeypot) accounts, in platform submission
    /// order — already thread-invariant by the engine's digest contract.
    pub events: Vec<ActionEvent>,
}

impl EventBatch {
    /// Build a canonical batch from a sealed-or-open [`DayLog`] plus the
    /// day's aggregated logins. `log == None` means a day with no activity.
    pub fn from_day(day: Day, log: Option<&DayLog>, logins: Vec<LoginRecord>) -> Self {
        let mut batch = EventBatch { day, logins, ..EventBatch::default() };
        if let Some(log) = log {
            batch.outbound = log.outbound().map(|(k, c)| (*k, *c)).collect();
            batch.outbound.sort_unstable_by_key(|(k, _)| *k);
            batch.inbound = log.inbound().map(|(k, c)| (*k, *c)).collect();
            batch.inbound.sort_unstable_by_key(|(k, _)| *k);
            batch.events = log.events.clone();
        }
        batch
    }

    /// Number of records in this batch (outbound + inbound + logins +
    /// events) — the unit the perf harness reports events/sec over.
    pub fn record_count(&self) -> u64 {
        (self.outbound.len() + self.inbound.len() + self.logins.len() + self.events.len()) as u64
    }
}

/// Incremental writer: header + one line per batch, staged in a `.tmp`
/// sibling until [`EventLogWriter::finish`] renames it into place.
#[derive(Debug)]
pub struct EventLogWriter {
    out: BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
}

impl EventLogWriter {
    /// Start a recording at `path` (staged at `path.tmp` until finished).
    pub fn create(path: &Path, header: &LogHeader) -> Result<Self, StreamError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let file = File::create(&tmp)?;
        let mut out = BufWriter::new(file);
        let line = serde_json::to_string(header)
            .map_err(|e| StreamError::Corrupt(format!("header serialize: {e}")))?;
        writeln!(out, "{line}")?;
        Ok(Self { out, tmp, path: path.to_path_buf() })
    }

    /// Append one day's batch.
    pub fn append(&mut self, batch: &EventBatch) -> Result<(), StreamError> {
        let line = serde_json::to_string(batch)
            .map_err(|e| StreamError::Corrupt(format!("batch serialize: {e}")))?;
        writeln!(self.out, "{line}")?;
        Ok(())
    }

    /// Flush and atomically move the staged file to its final path.
    pub fn finish(mut self) -> Result<PathBuf, StreamError> {
        self.out.flush()?;
        drop(self.out);
        fs::rename(&self.tmp, &self.path)?;
        Ok(self.path)
    }
}

/// Reader over a finished log: validates the header, then yields batches.
#[derive(Debug)]
pub struct EventLogReader {
    lines: std::io::Lines<BufReader<File>>,
    header: LogHeader,
    line_no: usize,
}

impl EventLogReader {
    /// Open `path`, parse and validate the header line.
    pub fn open(path: &Path) -> Result<Self, StreamError> {
        let file = File::open(path)?;
        let mut lines = BufReader::new(file).lines();
        let first = lines
            .next()
            .ok_or_else(|| StreamError::Corrupt("empty file (no header line)".into()))??;
        let header: LogHeader = serde_json::from_str(&first)
            .map_err(|e| StreamError::Corrupt(format!("header line: {e}")))?;
        if header.schema_version != STREAM_SCHEMA_VERSION {
            return Err(StreamError::VersionMismatch {
                found: header.schema_version,
                expected: STREAM_SCHEMA_VERSION,
            });
        }
        Ok(Self { lines, header, line_no: 1 })
    }

    /// The validated header.
    pub fn header(&self) -> &LogHeader {
        &self.header
    }

    /// The next day's batch, or `None` at end of log.
    pub fn next_batch(&mut self) -> Result<Option<EventBatch>, StreamError> {
        let Some(line) = self.lines.next() else { return Ok(None) };
        let line = line?;
        self.line_no += 1;
        if line.trim().is_empty() {
            return Ok(None);
        }
        let batch: EventBatch = serde_json::from_str(&line)
            .map_err(|e| StreamError::Corrupt(format!("line {}: {e}", self.line_no)))?;
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("footsteps_stream_env_{}_{name}.jsonl", std::process::id()));
        p
    }

    fn sample_header() -> LogHeader {
        LogHeader::new(
            7,
            Day(2),
            Day(10),
            8,
            vec![RosterEntry { account: AccountId(3), home_asn: AsnId(1), service: ServiceId::Boostgram }],
        )
    }

    #[test]
    fn roundtrip_header_and_batches() {
        let path = tmp_path("roundtrip");
        let header = sample_header();
        let mut w = EventLogWriter::create(&path, &header).unwrap();
        let mut b0 = EventBatch { day: Day(0), ..EventBatch::default() };
        b0.logins.push(LoginRecord { account: AccountId(3), asn: AsnId(1), count: 2 });
        w.append(&b0).unwrap();
        let b1 = EventBatch { day: Day(1), ..EventBatch::default() };
        w.append(&b1).unwrap();
        let final_path = w.finish().unwrap();
        assert_eq!(final_path, path);

        let mut r = EventLogReader::open(&path).unwrap();
        assert_eq!(r.header().schema_version, STREAM_SCHEMA_VERSION);
        assert_eq!(r.header().seed, 7);
        assert_eq!(r.header().roster.len(), 1);
        assert_eq!(r.next_batch().unwrap().unwrap(), b0);
        assert_eq!(r.next_batch().unwrap().unwrap(), b1);
        assert!(r.next_batch().unwrap().is_none());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_recording_leaves_no_final_file() {
        let path = tmp_path("unfinished");
        let w = EventLogWriter::create(&path, &sample_header()).unwrap();
        assert!(!path.exists(), "final path must not exist before finish()");
        drop(w);
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        assert!(tmp.exists());
        fs::remove_file(&tmp).unwrap();
    }

    #[test]
    fn version_mismatch_is_typed() {
        let path = tmp_path("version");
        let mut header = sample_header();
        header.schema_version = 99;
        let w = EventLogWriter::create(&path, &header).unwrap();
        w.finish().unwrap();
        match EventLogReader::open(&path) {
            Err(StreamError::VersionMismatch { found: 99, expected }) => {
                assert_eq!(expected, STREAM_SCHEMA_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_batch_line_is_typed() {
        let path = tmp_path("corrupt");
        let w = EventLogWriter::create(&path, &sample_header()).unwrap();
        w.finish().unwrap();
        let mut contents = fs::read_to_string(&path).unwrap();
        contents.push_str("{not json\n");
        fs::write(&path, contents).unwrap();
        let mut r = EventLogReader::open(&path).unwrap();
        match r.next_batch() {
            Err(StreamError::Corrupt(msg)) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }
}
