//! Detection latency: how many days the online detector trails the batch
//! classifier, per service, plus precision/recall of the online verdicts
//! with the batch classification as ground truth.
//!
//! The batch classifier matches *final* signatures against every day of
//! the window, so its `first_seen` is the earliest day an account's
//! traffic matched the finished signature; the online detector's
//! `first_seen` is the first day the account matched the signature *as
//! known that day*. The difference is the cost of detecting online, in
//! days — zero once the signature has converged.

use footsteps_analysis::Welford;
use footsteps_detect::{Classification, Score};
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-service latency distribution and online-vs-batch agreement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLatency {
    /// The service.
    pub service: ServiceId,
    /// Accounts detected by both the online and batch classifiers.
    pub matched: u64,
    /// Mean detection latency over matched accounts, in days.
    pub mean_days: f64,
    /// Sample standard deviation of the latency, in days.
    pub std_days: f64,
    /// Worst-case latency, in days.
    pub max_days: u32,
    /// Online-vs-batch agreement (`tp` = matched, `fp` = online-only,
    /// `fn_` = batch-only), batch verdicts as ground truth.
    pub score: Score,
}

/// The detection-latency report over all services with any verdicts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// One row per service, in `ServiceId::ALL` order.
    pub rows: Vec<ServiceLatency>,
}

impl LatencyReport {
    /// Aggregate mean latency across all services, weighted by matched
    /// accounts. 0 when nothing matched.
    pub fn overall_mean_days(&self) -> f64 {
        let total: u64 = self.rows.iter().map(|r| r.matched).sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .rows
            .iter()
            .map(|r| r.mean_days * r.matched as f64)
            .sum();
        weighted / total as f64
    }
}

/// Compare online verdicts against the batch classification.
pub fn latency_report(online: &Classification, batch: &Classification) -> LatencyReport {
    let mut rows = Vec::new();
    for service in ServiceId::ALL {
        let empty = std::collections::BTreeSet::new();
        let on = online.customers.get(&service).unwrap_or(&empty);
        let ba = batch.customers.get(&service).unwrap_or(&empty);
        if on.is_empty() && ba.is_empty() {
            continue;
        }
        let mut lat = Welford::new();
        let mut max_days = 0u32;
        let mut matched = 0u64;
        for &account in on.intersection(ba) {
            let Some(&detected) = online.first_seen.get(&(service, account)) else { continue };
            let Some(&truth) = batch.first_seen.get(&(service, account)) else { continue };
            let days = detected.0.saturating_sub(truth.0);
            lat.push(f64::from(days));
            max_days = max_days.max(days);
            matched += 1;
        }
        let score = Score {
            tp: on.intersection(ba).count(),
            fp: on.difference(ba).count(),
            fn_: ba.difference(on).count(),
        };
        rows.push(ServiceLatency {
            service,
            matched,
            mean_days: lat.mean(),
            std_days: lat.std_dev(),
            max_days,
            score,
        });
    }
    LatencyReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn classification(entries: &[(ServiceId, u32, u32)]) -> Classification {
        let mut c = Classification::default();
        for &(s, a, day) in entries {
            c.customers.entry(s).or_insert_with(BTreeSet::new).insert(AccountId(a));
            c.first_seen.insert((s, AccountId(a)), Day(day));
        }
        c
    }

    #[test]
    fn latency_is_online_minus_batch_first_seen() {
        let s = ServiceId::Boostgram;
        let batch = classification(&[(s, 1, 2), (s, 2, 4), (s, 3, 6)]);
        let online = classification(&[(s, 1, 5), (s, 2, 4)]); // account 3 missed
        let report = latency_report(&online, &batch);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.service, s);
        assert_eq!(row.matched, 2);
        assert_eq!(row.mean_days, 1.5, "latencies 3 and 0");
        assert_eq!(row.max_days, 3);
        assert_eq!(row.score.tp, 2);
        assert_eq!(row.score.fp, 0);
        assert_eq!(row.score.fn_, 1);
        assert_eq!(row.score.recall(), 2.0 / 3.0);
        assert_eq!(row.score.precision(), 1.0);
    }

    #[test]
    fn overall_mean_weights_by_matched() {
        let a = ServiceId::Boostgram;
        let b = ServiceId::Hublaagram;
        let batch = classification(&[(a, 1, 0), (b, 2, 0), (b, 3, 0)]);
        let online = classification(&[(a, 1, 3), (b, 2, 0), (b, 3, 0)]);
        let report = latency_report(&online, &batch);
        // One account at 3 days, two at 0 days → weighted mean 1.0.
        assert!((report.overall_mean_days() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn services_with_no_verdicts_are_omitted() {
        let report = latency_report(&Classification::default(), &Classification::default());
        assert!(report.rows.is_empty());
        assert_eq!(report.overall_mean_days(), 0.0);
    }
}
