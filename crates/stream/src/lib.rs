//! # footsteps-stream
//!
//! Online detection over a replayable platform event log (DESIGN.md §8).
//!
//! The batch pipeline of *Following Their Footsteps* looks backwards over
//! a finished window. A production counter-abuse system does not get that
//! luxury: signatures, classifications and thresholds must be maintained
//! as traffic arrives. This crate adds that online vantage point on top
//! of the simulator, in three pieces:
//!
//! * [`envelope`] — a compact per-day [`EventBatch`] (action aggregates
//!   with enforcement outcomes, logins with ASN, honeypot event streams)
//!   plus a versioned JSONL log with atomic tmp+rename writes;
//! * [`online`] — the [`OnlineDetector`]: incremental honeypot signature
//!   matching, per-day classification with day-of-first-detection, and
//!   sliding-window §6.2 thresholds over presorted per-day runs
//!   (`footsteps_aas::stats::quantile_sorted_runs` — no re-sorting);
//! * [`sink`] — the [`StreamSink`] implementing `sim::EventSink`, feeding
//!   the detector inline and (optionally) recording the log;
//! * [`latency`] — detection latency and precision/recall of the online
//!   verdicts against the batch classifier.
//!
//! [`replay`] re-runs a recorded log through a fresh detector offline;
//! CI asserts its verdict digest is byte-identical to the inline run's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod envelope;
pub mod latency;
pub mod online;
pub mod sink;

pub use envelope::{
    EventBatch, EventLogReader, EventLogWriter, LogHeader, LoginRecord, RosterEntry, StreamError,
    STREAM_SCHEMA_VERSION,
};
pub use latency::{latency_report, LatencyReport, ServiceLatency};
pub use online::{OnlineDetector, SignatureView, StreamConfig, StreamOutcome, VerdictSnapshot};
pub use sink::{roster, StreamSink};

use footsteps_obs::Stopwatch;
use std::path::Path;

/// FNV-1a over bytes — the same digest primitive as
/// `StudyResults::digest` and the sweep checkpoints, duplicated locally
/// (12 lines) rather than creating a dependency edge for it.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Replay a recorded event log through a fresh [`OnlineDetector`].
///
/// The log header carries the roster and window geometry, so replay needs
/// nothing but the file; the returned outcome's `verdict_digest` is
/// byte-identical to the inline run that recorded the log.
pub fn replay(path: &Path) -> Result<StreamOutcome, StreamError> {
    let mut reader = EventLogReader::open(path)?;
    let header = reader.header();
    let config = StreamConfig {
        calibration_start: header.calibration_start,
        calibration_end: header.calibration_end,
        window_days: header.window_days,
    };
    let roster = header.roster.clone();
    let mut detector = OnlineDetector::new(config, &roster);
    let sw = Stopwatch::start();
    while let Some(batch) = reader.next_batch()? {
        detector.ingest(&batch);
    }
    let reached = detector.next_day();
    detector
        .into_outcome(sw.elapsed_secs(), Some(path.to_path_buf()))
        .ok_or(StreamError::Incomplete { reached })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Same vectors the sweep checkpoint tests pin.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
