//! The online detector: batch `detect` semantics, computed incrementally.
//!
//! The batch pipeline (`detect::DetectionPipeline`) scans the whole
//! characterization window after the fact. This detector consumes one
//! [`EventBatch`] per day and maintains the same three artifacts as
//! running state:
//!
//! * **signatures** — grown monotonically from the honeypot roster's event
//!   streams, with the same home-ASN/organic-client skip rule as
//!   `detect::extract_signature`;
//! * **classification** — each day's aggregates are matched against the
//!   signatures *as of that day* (today's events update the signature
//!   before today's aggregates are matched), so `first_seen` is the
//!   account's *day of first online detection*;
//! * **thresholds** — per-ASN daily-activity samples are kept in a sliding
//!   window of per-day *sorted runs*; at the calibration boundary the §6.2
//!   rules are evaluated with `quantile_sorted_runs`
//!   (`footsteps_aas::stats`), a rank merge over the presorted runs — no
//!   re-sort of the full window, and bit-identical to the batch path's
//!   sort-then-index percentile.
//!
//! When the detector reaches `calibration_end` it **freezes** a
//! [`VerdictSnapshot`] and stamps it with an FNV-1a digest of its
//! canonical JSON; the record→replay identity gate in CI compares this
//! digest between the inline run and `stream-replay`.
//!
//! Expected deviations from batch verdicts: the batch classifier matches
//! *final* signatures against *every* day, so an account active only
//! before the day its service's signature finished growing can appear in
//! batch but not online. Online verdicts are therefore a subset of batch
//! verdicts; the parity test pins the observed gap on the smoke scenario.

use crate::envelope::{EventBatch, RosterEntry};
use footsteps_detect::{AsnTraffic, Classification, ThresholdTable};
use footsteps_sim::enforcement::Direction;
use footsteps_sim::prelude::*;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// The window geometry the detector freezes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// First day of the threshold calibration window.
    pub calibration_start: Day,
    /// End (exclusive) of the calibration window; verdicts freeze here.
    pub calibration_end: Day,
    /// Sliding-window length in days (the scenario's calibration tail).
    pub window_days: u32,
}

/// Incrementally grown signature state for one service. Mirrors
/// `detect::ServiceSignature` but keeps both sets ordered so snapshots
/// serialize canonically without a sort at freeze time.
#[derive(Debug, Clone, Default)]
struct SigState {
    asn_set: BTreeSet<AsnId>,
    client_set: BTreeSet<ClientFingerprint>,
    collusion: bool,
}

impl SigState {
    /// Same predicate as `ServiceSignature::matches_outbound`.
    fn matches_outbound(&self, asn: AsnId, fingerprint: ClientFingerprint) -> bool {
        self.asn_set.contains(&asn) && self.client_set.contains(&fingerprint)
    }

    /// Same predicate as `ServiceSignature::matches_inbound`.
    fn matches_inbound(&self, asn: AsnId) -> bool {
        self.collusion && self.asn_set.contains(&asn)
    }
}

/// One day of threshold-calibration samples, presorted at construction.
#[derive(Debug, Clone, Default)]
struct DaySamples {
    /// Per ASN: `(account, total attempted outbound)` per raw record, for
    /// the abusive/benign traffic split of `asn_traffic_kind`.
    kind_samples: BTreeMap<AsnId, Vec<(AccountId, u32)>>,
    /// Per `(ASN, action)`: per-account daily outbound counts (summed
    /// across fingerprints), sorted by `(count, account)` so a filtered
    /// projection to counts stays sorted.
    out_runs: BTreeMap<(AsnId, ActionType), Vec<(u32, AccountId)>>,
    /// Per `(ASN, action)`: per-recipient daily inbound counts, sorted.
    in_runs: BTreeMap<(AsnId, ActionType), Vec<u32>>,
}

/// The two action types §6.2 thresholds cover.
const THRESHOLD_TYPES: [ActionType; 2] = [ActionType::Like, ActionType::Follow];

impl DaySamples {
    fn build(batch: &EventBatch) -> Self {
        let mut s = DaySamples::default();
        let mut per: BTreeMap<(AsnId, ActionType, AccountId), u32> = BTreeMap::new();
        for (key, counts) in &batch.outbound {
            s.kind_samples
                .entry(key.asn)
                .or_default()
                .push((key.account, counts.total_attempted()));
            for ty in THRESHOLD_TYPES {
                let n = counts.attempted_of(ty);
                if n > 0 {
                    *per.entry((key.asn, ty, key.account)).or_insert(0) += n;
                }
            }
        }
        for ((asn, ty, account), n) in per {
            s.out_runs.entry((asn, ty)).or_default().push((n, account));
        }
        for run in s.out_runs.values_mut() {
            run.sort_unstable();
        }
        for ((_, source), counts) in &batch.inbound {
            let Some(asn) = source else { continue };
            for ty in THRESHOLD_TYPES {
                let n = counts.attempted_of(ty);
                if n > 0 {
                    s.in_runs.entry((*asn, ty)).or_default().push(n);
                }
            }
        }
        for run in s.in_runs.values_mut() {
            run.sort_unstable();
        }
        s
    }
}

/// A service signature as frozen into a [`VerdictSnapshot`]: the same
/// content as `detect::ServiceSignature` with both sets in sorted order.
#[derive(Debug, Clone, Serialize)]
pub struct SignatureView {
    /// The service.
    pub service: ServiceId,
    /// Sorted signature ASNs.
    pub asns: Vec<AsnId>,
    /// Sorted signature client fingerprints.
    pub fingerprints: Vec<ClientFingerprint>,
    /// Whether inbound traffic from the ASNs also matches.
    pub collusion: bool,
}

/// Everything the online detector believed at the calibration boundary.
/// Serialization is fully canonical (sorted vectors and BTree maps only),
/// so its FNV-1a digest is the record→replay identity token.
#[derive(Debug, Clone, Serialize)]
pub struct VerdictSnapshot {
    /// Schema stamp (same version space as the event-log envelope).
    pub schema_version: u32,
    /// The day the verdicts froze (`calibration_end`).
    pub frozen_on: Day,
    /// Signatures as of the freeze.
    pub signatures: Vec<SignatureView>,
    /// Online customer attribution. `first_seen` is the per-account
    /// day-of-first-detection.
    pub classification: Classification,
    /// Frozen thresholds, flattened from the table's ordered map.
    pub thresholds: Vec<((AsnId, ActionType, Direction), u32)>,
    /// Traffic kind per signature ASN, sorted by ASN.
    pub asn_kinds: Vec<(AsnId, AsnTraffic)>,
}

impl VerdictSnapshot {
    /// Canonical JSON of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("verdict snapshot serializes")
    }

    /// FNV-1a of [`VerdictSnapshot::to_json`].
    pub fn digest(&self) -> u64 {
        crate::fnv1a(self.to_json().as_bytes())
    }

    /// Rebuild the frozen table (for handing to intervention policies or
    /// comparing against the batch pipeline's table).
    pub fn threshold_table(&self) -> ThresholdTable {
        let mut table = ThresholdTable::default();
        for &((asn, ty, direction), v) in &self.thresholds {
            table.set(asn, ty, direction, v);
        }
        for &(asn, kind) in &self.asn_kinds {
            table.asn_kinds.insert(asn, kind);
        }
        table
    }
}

/// What a completed streaming run hands back to its caller.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The frozen verdicts.
    pub verdicts: VerdictSnapshot,
    /// [`VerdictSnapshot::digest`], precomputed at freeze.
    pub verdict_digest: u64,
    /// Records consumed (outbound + inbound + logins + events).
    pub events_processed: u64,
    /// Day batches consumed.
    pub batches: u64,
    /// Wall-clock seconds spent inside the detector (observability only;
    /// measured by the caller with `footsteps_obs::Stopwatch`).
    pub detector_secs: f64,
    /// Where the recorded log ended up, if recording was on.
    pub log_path: Option<PathBuf>,
}

/// The incremental detector. Feed it day batches in order via
/// [`OnlineDetector::ingest`]; it freezes itself when the calibration
/// window closes.
#[derive(Debug)]
pub struct OnlineDetector {
    config: StreamConfig,
    /// `account → (home ASN, service)` for signature extraction.
    watch: BTreeMap<AccountId, (AsnId, ServiceId)>,
    sigs: BTreeMap<ServiceId, SigState>,
    classification: Classification,
    window: VecDeque<DaySamples>,
    next_day: Day,
    events_processed: u64,
    batches: u64,
    frozen: Option<(VerdictSnapshot, u64)>,
}

impl OnlineDetector {
    /// A fresh detector watching `roster` with the given window geometry.
    pub fn new(config: StreamConfig, roster: &[RosterEntry]) -> Self {
        let watch = roster
            .iter()
            .map(|r| (r.account, (r.home_asn, r.service)))
            .collect();
        Self {
            config,
            watch,
            sigs: BTreeMap::new(),
            classification: Classification::default(),
            window: VecDeque::new(),
            next_day: Day(0),
            events_processed: 0,
            batches: 0,
            frozen: None,
        }
    }

    /// The next day this detector expects.
    pub fn next_day(&self) -> Day {
        self.next_day
    }

    /// Records consumed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Day batches consumed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The classifier's verdicts so far (`first_seen` is the per-account
    /// day of first online detection).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The frozen verdicts, once the calibration window has closed.
    pub fn frozen(&self) -> Option<&VerdictSnapshot> {
        self.frozen.as_ref().map(|(s, _)| s)
    }

    /// The frozen verdict digest, once available.
    pub fn verdict_digest(&self) -> Option<u64> {
        self.frozen.as_ref().map(|&(_, d)| d)
    }

    /// Consume one day. Days must arrive in order with no gaps.
    ///
    /// # Panics
    /// Panics if `batch.day` is not the expected next day.
    pub fn ingest(&mut self, batch: &EventBatch) {
        assert_eq!(
            batch.day, self.next_day,
            "event batches must arrive in day order with no gaps"
        );
        self.next_day = batch.day.plus(1);
        self.events_processed += batch.record_count();
        self.batches += 1;

        // 1. Grow signatures from today's honeypot events, so today's
        //    aggregates are matched against today's knowledge.
        for ev in &batch.events {
            let Some(&(home, service)) = self.watch.get(&ev.actor) else { continue };
            // Same rule as `detect::extract_signature`: the framework's own
            // management traffic (home network, first-party client) is not
            // service traffic.
            if ev.asn == home && ev.fingerprint.is_organic_client() {
                continue;
            }
            let sig = self.sigs.entry(service).or_insert_with(|| SigState {
                collusion: service.is_collusion(),
                ..SigState::default()
            });
            sig.asn_set.insert(ev.asn);
            sig.client_set.insert(ev.fingerprint);
        }

        // 2. Classify today's aggregates (same record skip rules and the
        //    same note() bookkeeping as `detect::classify`).
        for (key, counts) in &batch.outbound {
            if counts.total_attempted() == 0 {
                continue;
            }
            for (&service, sig) in &self.sigs {
                if sig.matches_outbound(key.asn, key.fingerprint) {
                    note(&mut self.classification, service, key.account, batch.day);
                }
            }
        }
        for ((account, source), counts) in &batch.inbound {
            let Some(asn) = source else { continue };
            if counts.total_attempted() == 0 {
                continue;
            }
            for (&service, sig) in &self.sigs {
                if sig.matches_inbound(*asn) {
                    note(&mut self.classification, service, *account, batch.day);
                }
            }
        }

        // 3. Slide the calibration sample window.
        self.window.push_back(DaySamples::build(batch));
        while self.window.len() > self.config.window_days as usize {
            self.window.pop_front();
        }

        // 4. Freeze at the calibration boundary.
        if self.next_day == self.config.calibration_end && self.frozen.is_none() {
            let snapshot = self.freeze();
            let digest = snapshot.digest();
            self.frozen = Some((snapshot, digest));
        }
    }

    /// Abusive/benign split of an ASN's windowed outbound traffic —
    /// `detect::asn_traffic_kind` over the sliding window.
    fn asn_kind(&self, asn: AsnId) -> AsnTraffic {
        let mut abusive = 0u64;
        let mut benign = 0u64;
        for day in &self.window {
            let Some(samples) = day.kind_samples.get(&asn) else { continue };
            for &(account, n) in samples {
                if self.classification.is_abusive(account) {
                    abusive += u64::from(n);
                } else {
                    benign += u64::from(n);
                }
            }
        }
        let total = abusive + benign;
        if total == 0 || abusive == 0 {
            return AsnTraffic::Benign;
        }
        if benign * 50 < total {
            AsnTraffic::PureAbuse
        } else {
            AsnTraffic::Mixed
        }
    }

    /// Windowed quantile of per-account daily outbound counts, filtered by
    /// classification state. Each day's run is presorted by `(count,
    /// account)`, so the filtered count projection stays sorted and the
    /// quantile is a rank merge — no re-sort of the window.
    fn out_quantile(&self, asn: AsnId, ty: ActionType, p: f64, abusive: bool) -> Option<u32> {
        let filtered: Vec<Vec<u32>> = self
            .window
            .iter()
            .map(|day| {
                day.out_runs
                    .get(&(asn, ty))
                    .map(|run| {
                        run.iter()
                            .filter(|&&(_, account)| {
                                self.classification.is_abusive(account) == abusive
                            })
                            .map(|&(n, _)| n)
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let runs: Vec<&[u32]> = filtered.iter().map(Vec::as_slice).collect();
        footsteps_aas::stats::quantile_sorted_runs(&runs, p)
    }

    /// Windowed quantile of per-recipient daily inbound counts.
    fn in_quantile(&self, asn: AsnId, ty: ActionType, p: f64) -> Option<u32> {
        let runs: Vec<&[u32]> = self
            .window
            .iter()
            .map(|day| {
                day.in_runs
                    .get(&(asn, ty))
                    .map(|run| run.as_slice())
                    .unwrap_or(&[])
            })
            .collect();
        footsteps_aas::stats::quantile_sorted_runs(&runs, p)
    }

    /// Evaluate the §6.2 threshold rules over the current window and
    /// snapshot everything. Mirrors `detect::compute_thresholds`.
    fn freeze(&self) -> VerdictSnapshot {
        let mut table = ThresholdTable::default();
        let mut kinds: BTreeMap<AsnId, AsnTraffic> = BTreeMap::new();
        for sig in self.sigs.values() {
            let direction = if sig.collusion {
                Direction::Inbound
            } else {
                Direction::Outbound
            };
            for &asn in &sig.asn_set {
                let kind = self.asn_kind(asn);
                kinds.insert(asn, kind);
                for ty in THRESHOLD_TYPES {
                    let threshold = match kind {
                        AsnTraffic::Benign => continue,
                        AsnTraffic::Mixed => self.out_quantile(asn, ty, 0.99, false),
                        AsnTraffic::PureAbuse => match direction {
                            Direction::Outbound => self.out_quantile(asn, ty, 0.25, true),
                            Direction::Inbound => self.in_quantile(asn, ty, 0.25),
                        },
                    };
                    let Some(v) = threshold else { continue };
                    table.set(asn, ty, direction, v.max(1));
                }
            }
        }
        let signatures = self
            .sigs
            .iter()
            .map(|(&service, sig)| SignatureView {
                service,
                asns: sig.asn_set.iter().copied().collect(),
                fingerprints: sig.client_set.iter().copied().collect(),
                collusion: sig.collusion,
            })
            .collect();
        VerdictSnapshot {
            schema_version: crate::envelope::STREAM_SCHEMA_VERSION,
            frozen_on: self.config.calibration_end,
            signatures,
            classification: self.classification.clone(),
            thresholds: table.iter().map(|(&k, &v)| (k, v)).collect(),
            asn_kinds: kinds.into_iter().collect(),
        }
    }

    /// Finish the run: hand back the frozen verdicts plus the counters.
    /// `None` if the calibration window never closed.
    pub fn into_outcome(
        self,
        detector_secs: f64,
        log_path: Option<PathBuf>,
    ) -> Option<StreamOutcome> {
        let events_processed = self.events_processed;
        let batches = self.batches;
        let (verdicts, verdict_digest) = self.frozen?;
        Some(StreamOutcome {
            verdicts,
            verdict_digest,
            events_processed,
            batches,
            detector_secs,
            log_path,
        })
    }
}

/// Identical bookkeeping to `detect::classify`'s `note`.
fn note(c: &mut Classification, service: ServiceId, account: AccountId, day: Day) {
    c.customers.entry(service).or_default().insert(account);
    c.first_seen.entry((service, account)).or_insert(day);
    c.last_seen.insert((service, account), day);
    let days = c.active_days.entry((service, account)).or_default();
    if days.last() != Some(&day) {
        days.push(day);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::LoginRecord;

    fn cfg(end: u32, window: u32) -> StreamConfig {
        StreamConfig {
            calibration_start: Day(end.saturating_sub(window)),
            calibration_end: Day(end),
            window_days: window,
        }
    }

    fn roster() -> Vec<RosterEntry> {
        vec![RosterEntry {
            account: AccountId(1),
            home_asn: AsnId(0),
            service: ServiceId::Boostgram,
        }]
    }

    fn honeypot_event(day: u32, asn: AsnId, fp: ClientFingerprint) -> ActionEvent {
        ActionEvent {
            at: Day(day).start(),
            actor: AccountId(1),
            action: ActionType::Follow,
            target: ActionTarget::Account(AccountId(9)),
            ip: IpAddr4(0),
            asn,
            fingerprint: fp,
            outcome: ActionOutcome::Delivered,
        }
    }

    fn outbound(account: u32, asn: AsnId, fp: ClientFingerprint, follows: u32) -> (OutboundKey, TypeCounts) {
        let mut counts = TypeCounts::default();
        let idx = ActionType::Follow.index();
        counts.attempted[idx] = follows;
        counts.delivered[idx] = follows;
        (
            OutboundKey { account: AccountId(account), asn, fingerprint: fp },
            counts,
        )
    }

    const BOT: ClientFingerprint = ClientFingerprint::SpoofedMobile { variant: 1 };

    #[test]
    fn signature_grows_and_classifies_same_day() {
        let mut det = OnlineDetector::new(cfg(2, 2), &roster());
        let service_asn = AsnId(7);
        let batch = EventBatch {
            day: Day(0),
            outbound: vec![outbound(1, service_asn, BOT, 10), outbound(42, service_asn, BOT, 10)],
            events: vec![honeypot_event(0, service_asn, BOT)],
            ..EventBatch::default()
        };
        det.ingest(&batch);
        // The honeypot event taught the signature before the aggregates
        // were matched, so the customer is caught on its first day.
        assert!(det.classification().is_abusive(AccountId(42)));
        assert_eq!(
            det.classification().first_seen[&(ServiceId::Boostgram, AccountId(42))],
            Day(0)
        );
    }

    #[test]
    fn home_organic_traffic_does_not_enter_signature() {
        let mut det = OnlineDetector::new(cfg(2, 2), &roster());
        let batch = EventBatch {
            day: Day(0),
            events: vec![honeypot_event(0, AsnId(0), ClientFingerprint::OfficialApp)],
            ..EventBatch::default()
        };
        det.ingest(&batch);
        det.ingest(&EventBatch { day: Day(1), ..EventBatch::default() });
        let frozen = det.frozen().expect("frozen at calibration end");
        assert!(frozen.signatures.is_empty(), "management traffic is not the service");
    }

    #[test]
    fn freezes_exactly_at_calibration_end() {
        let mut det = OnlineDetector::new(cfg(3, 3), &roster());
        det.ingest(&EventBatch { day: Day(0), ..EventBatch::default() });
        det.ingest(&EventBatch { day: Day(1), ..EventBatch::default() });
        assert!(det.frozen().is_none());
        det.ingest(&EventBatch { day: Day(2), ..EventBatch::default() });
        assert!(det.frozen().is_some());
        let digest = det.verdict_digest().unwrap();
        // Post-freeze batches do not change the frozen verdicts.
        det.ingest(&EventBatch { day: Day(3), ..EventBatch::default() });
        assert_eq!(det.verdict_digest(), Some(digest));
    }

    #[test]
    #[should_panic(expected = "day order")]
    fn out_of_order_batch_panics() {
        let mut det = OnlineDetector::new(cfg(3, 3), &roster());
        det.ingest(&EventBatch { day: Day(1), ..EventBatch::default() });
    }

    #[test]
    fn pure_abuse_threshold_is_25th_percentile_of_abuse() {
        let service_asn = AsnId(7);
        let mut det = OnlineDetector::new(cfg(2, 2), &roster());
        // Day 0: signature + four abusive accounts at 10/20/30/40 follows.
        let batch = EventBatch {
            day: Day(0),
            outbound: (0..4).map(|i| outbound(40 + i, service_asn, BOT, 10 * (i + 1))).collect(),
            events: vec![honeypot_event(0, service_asn, BOT)],
            ..EventBatch::default()
        };
        det.ingest(&batch);
        det.ingest(&EventBatch { day: Day(1), ..EventBatch::default() });
        let frozen = det.frozen().unwrap();
        let table = frozen.threshold_table();
        assert_eq!(table.asn_kinds[&service_asn], AsnTraffic::PureAbuse);
        // Nearest-rank 25th percentile of {10,20,30,40} is 10.
        assert_eq!(
            table.get(service_asn, ActionType::Follow, Direction::Outbound),
            Some(10)
        );
    }

    #[test]
    fn mixed_asn_uses_benign_99th_percentile() {
        let mixed = AsnId(7);
        let mut det = OnlineDetector::new(cfg(2, 2), &roster());
        let mut out = vec![outbound(1, mixed, BOT, 500), outbound(42, mixed, BOT, 500)];
        // 100 benign accounts, 1..=100 follows each, via an organic client.
        for i in 0..100u32 {
            out.push(outbound(1000 + i, mixed, ClientFingerprint::OfficialApp, i + 1));
        }
        let batch = EventBatch {
            day: Day(0),
            outbound: out,
            events: vec![honeypot_event(0, mixed, BOT)],
            ..EventBatch::default()
        };
        det.ingest(&batch);
        det.ingest(&EventBatch { day: Day(1), ..EventBatch::default() });
        let frozen = det.frozen().unwrap();
        let table = frozen.threshold_table();
        assert_eq!(table.asn_kinds[&mixed], AsnTraffic::Mixed);
        // 99th percentile of the 100 benign counts {1..=100} is 99.
        assert_eq!(table.get(mixed, ActionType::Follow, Direction::Outbound), Some(99));
    }

    #[test]
    fn verdict_digest_is_stable_for_identical_streams() {
        let feed = |det: &mut OnlineDetector| {
            let service_asn = AsnId(7);
            det.ingest(&EventBatch {
                day: Day(0),
                outbound: vec![outbound(42, service_asn, BOT, 10)],
                events: vec![honeypot_event(0, service_asn, BOT)],
                logins: vec![LoginRecord { account: AccountId(42), asn: service_asn, count: 1 }],
                ..EventBatch::default()
            });
            det.ingest(&EventBatch { day: Day(1), ..EventBatch::default() });
        };
        let mut a = OnlineDetector::new(cfg(2, 2), &roster());
        let mut b = OnlineDetector::new(cfg(2, 2), &roster());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.verdict_digest().unwrap(), b.verdict_digest().unwrap());
        assert_eq!(a.events_processed(), 3);
        assert_eq!(a.batches(), 2);
    }
}
