//! The platform-side recorder: a `sim::EventSink` that feeds the online
//! detector as days seal, and (optionally) serializes each batch into the
//! replayable event log.
//!
//! The sink is observability-plus-detection state hanging off the
//! platform the same way the metrics recorder does: it never feeds back
//! into simulation decisions, so installing it cannot move the golden
//! digest. Logins are accumulated per `(account, ASN)` as they happen on
//! the serial mutation path; day aggregates are read straight from the
//! sealed [`DayLog`] at drain time, so a sink installed after setup still
//! sees complete days.

use crate::envelope::{
    EventBatch, EventLogWriter, LogHeader, LoginRecord, RosterEntry, StreamError,
};
use crate::online::{OnlineDetector, StreamConfig, StreamOutcome};
use footsteps_honeypot::HoneypotFramework;
use footsteps_obs::Stopwatch;
use footsteps_sim::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;

/// The honeypot roster the detector watches: every framework record
/// enrolled with a service, with its home ASN (for the management-traffic
/// skip rule). This is the same ground truth `detect::extract_signature`
/// reads, snapshotted so a recorded log is self-contained.
pub fn roster(framework: &HoneypotFramework, platform: &Platform) -> Vec<RosterEntry> {
    framework
        .records()
        .iter()
        .filter_map(|r| {
            let service = r.service?;
            Some(RosterEntry {
                account: r.account,
                home_asn: platform.accounts.get(r.account).home_asn,
                service,
            })
        })
        .collect()
}

/// The event sink: detector + optional recorder.
#[derive(Debug)]
pub struct StreamSink {
    detector: OnlineDetector,
    writer: Option<EventLogWriter>,
    pending_logins: BTreeMap<Day, BTreeMap<(AccountId, AsnId), u32>>,
    detector_secs: f64,
    write_error: Option<StreamError>,
}

impl StreamSink {
    /// A sink feeding a fresh detector; recording is on when `writer` is.
    pub fn new(config: StreamConfig, roster: &[RosterEntry], writer: Option<EventLogWriter>) -> Self {
        Self {
            detector: OnlineDetector::new(config, roster),
            writer,
            pending_logins: BTreeMap::new(),
            detector_secs: 0.0,
            write_error: None,
        }
    }

    /// Convenience constructor: build the roster from the framework, open
    /// the recorder at `record_to` (if given), and return the ready sink.
    pub fn build(
        platform: &Platform,
        framework: &HoneypotFramework,
        seed: u64,
        config: StreamConfig,
        record_to: Option<&Path>,
    ) -> Result<Self, StreamError> {
        let roster = roster(framework, platform);
        let writer = match record_to {
            Some(path) => {
                let header = LogHeader::new(
                    seed,
                    config.calibration_start,
                    config.calibration_end,
                    config.window_days,
                    roster.clone(),
                );
                Some(EventLogWriter::create(path, &header)?)
            }
            None => None,
        };
        Ok(Self::new(config, &roster, writer))
    }

    /// The detector's running state (tests and live inspection).
    pub fn detector(&self) -> &OnlineDetector {
        &self.detector
    }

    /// Detach the installed [`StreamSink`] from `platform` and finish it:
    /// the recorder (if any) is flushed and atomically renamed into place,
    /// and the frozen verdicts come back as a [`StreamOutcome`].
    ///
    /// Returns `None` if no sink is installed or the installed sink is not
    /// a `StreamSink` (a foreign sink is dropped — `StreamSink` is the
    /// only implementor in the workspace).
    pub fn detach(platform: &mut Platform) -> Option<Result<StreamOutcome, StreamError>> {
        let sink = platform.take_sink()?;
        let me = sink.into_any().downcast::<StreamSink>().ok()?;
        Some(me.finish())
    }

    /// Finish the run directly (replay-side callers own the sink).
    pub fn finish(mut self) -> Result<StreamOutcome, StreamError> {
        if let Some(e) = self.write_error.take() {
            return Err(e);
        }
        let log_path = match self.writer.take() {
            Some(w) => Some(w.finish()?),
            None => None,
        };
        let reached = self.detector.next_day();
        self.detector
            .into_outcome(self.detector_secs, log_path)
            .ok_or(StreamError::Incomplete { reached })
    }
}

impl EventSink for StreamSink {
    fn next_day(&self) -> Day {
        self.detector.next_day()
    }

    fn on_login(&mut self, day: Day, account: AccountId, asn: AsnId) {
        *self
            .pending_logins
            .entry(day)
            .or_default()
            .entry((account, asn))
            .or_insert(0) += 1;
    }

    fn on_day_complete(&mut self, day: Day, log: Option<&DayLog>) {
        let logins: Vec<LoginRecord> = self
            .pending_logins
            .remove(&day)
            .map(|m| {
                m.into_iter()
                    .map(|((account, asn), count)| LoginRecord { account, asn, count })
                    .collect()
            })
            .unwrap_or_default();
        let batch = EventBatch::from_day(day, log, logins);
        let sw = Stopwatch::start();
        self.detector.ingest(&batch);
        self.detector_secs += sw.elapsed_secs();
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.append(&batch) {
                // Surface at finish(): the sink must not panic mid-phase.
                self.write_error = Some(e);
                self.writer = None;
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
