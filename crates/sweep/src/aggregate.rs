//! Cross-seed aggregation: streaming Welford moments and percentile
//! summaries over per-seed [`StudyResults`], rendered as the paper's
//! tables with error bars.
//!
//! One seed gives a point estimate; the sweep's purpose is the spread.
//! Every quantity is accumulated with
//! [`footsteps_analysis::stats::Welford`] (numerically stable, mergeable)
//! keyed by the row labels, so rows align across seeds regardless of
//! their in-file order. Metrics snapshots merge phase-aligned via
//! [`MetricsSnapshot::merge`].

use footsteps_analysis::report::Table;
use footsteps_analysis::stats::{percentiles, Welford};
use footsteps_core::results::StudyResults;
use footsteps_obs::MetricsSnapshot;
use footsteps_stream::LatencyReport;

/// Welford moments for one Table 5 reciprocation cell across seeds.
#[derive(Debug, Clone, Default)]
pub struct CellAgg {
    /// Outbound actions that visibly succeeded.
    pub outbound: Welford,
    /// Inbound likes received.
    pub inbound_likes: Welford,
    /// Inbound follows received.
    pub inbound_follows: Welford,
    /// P(inbound follow | outbound action).
    pub follow_rate: Welford,
    /// P(inbound like | outbound action).
    pub like_rate: Welford,
}

/// One aggregated Table 5 row (a (service, cohort, action) cell).
#[derive(Debug, Clone)]
pub struct Table5Agg {
    /// Service label.
    pub service: String,
    /// Cohort label: `lived-in` or `empty`.
    pub cohort: String,
    /// Outbound action label.
    pub action: String,
    /// The aggregated cell.
    pub cell: CellAgg,
    /// Raw per-seed inbound-follow counts, for percentile summaries.
    pub follows_per_seed: Vec<f64>,
}

/// One aggregated Table 6 row.
#[derive(Debug, Clone)]
pub struct Table6Agg {
    /// Business group label.
    pub group: String,
    /// Distinct customers.
    pub customers: Welford,
    /// Long-term customers.
    pub long_term: Welford,
    /// Short-term customers.
    pub short_term: Welford,
}

/// Ledger ground-truth revenue across seeds (cents over the revenue
/// month).
#[derive(Debug, Clone, Default)]
pub struct RevenueAgg {
    /// Boostgram gross (Table 8 truth).
    pub boostgram_cents: Welford,
    /// Insta* gross (Table 8 truth).
    pub instastar_cents: Welford,
    /// Hublaagram gross, all payment kinds (Table 9 truth).
    pub hublaagram_cents: Welford,
}

/// One aggregated detection-latency row (DESIGN.md §8): the per-seed
/// online-vs-batch latency summaries for one service, pooled across
/// seeds.
#[derive(Debug, Clone)]
pub struct LatencyAgg {
    /// Service label.
    pub service: String,
    /// Accounts matched by both detectors, per seed.
    pub matched: Welford,
    /// Per-seed mean latency in days.
    pub mean_days: Welford,
    /// Per-seed worst-case latency in days.
    pub max_days: Welford,
    /// Per-seed online-vs-batch precision.
    pub precision: Welford,
    /// Per-seed online-vs-batch recall.
    pub recall: Welford,
}

/// Everything `sweep report` prints.
#[derive(Debug)]
pub struct AggregateReport {
    /// Seeds aggregated, in sweep order.
    pub seeds: Vec<u64>,
    /// `(seed, StudyResults digest)` in the same order.
    pub digests: Vec<(u64, u64)>,
    /// Aggregated Table 5 rows, first-seen order.
    pub table5: Vec<Table5Agg>,
    /// Aggregated Table 6 rows, first-seen order.
    pub table6: Vec<Table6Agg>,
    /// Revenue ground truth.
    pub revenue: RevenueAgg,
    /// All seeds' metrics snapshots merged (None when none were given).
    pub metrics: Option<MetricsSnapshot>,
    /// Aggregated detection-latency rows, first-seen order (empty when
    /// no seed supplied a latency report).
    pub latency: Vec<LatencyAgg>,
}

/// Aggregate per-seed results (and optionally their metrics snapshots and
/// detection-latency reports) into one report. Rows are keyed by their
/// labels, so partial overlaps (a variant missing a service) still align
/// correctly.
pub fn aggregate(
    per_seed: &[StudyResults],
    metrics: &[MetricsSnapshot],
    latency: &[LatencyReport],
) -> AggregateReport {
    let mut report = AggregateReport {
        seeds: per_seed.iter().map(|r| r.seed).collect(),
        digests: per_seed.iter().map(|r| (r.seed, r.digest())).collect(),
        table5: Vec::new(),
        table6: Vec::new(),
        revenue: RevenueAgg::default(),
        metrics: None,
        latency: Vec::new(),
    };

    for results in per_seed {
        for row in &results.table5 {
            let service = row.service.to_string();
            let cohort = if row.lived_in { "lived-in" } else { "empty" }.to_string();
            let action = row.outbound.to_string();
            let agg = match report
                .table5
                .iter_mut()
                .find(|a| a.service == service && a.cohort == cohort && a.action == action)
            {
                Some(a) => a,
                None => {
                    report.table5.push(Table5Agg {
                        service,
                        cohort,
                        action,
                        cell: CellAgg::default(),
                        follows_per_seed: Vec::new(),
                    });
                    report.table5.last_mut().expect("just pushed")
                }
            };
            agg.cell.outbound.push(row.cell.outbound as f64);
            agg.cell.inbound_likes.push(row.cell.inbound_likes as f64);
            agg.cell.inbound_follows.push(row.cell.inbound_follows as f64);
            agg.cell.follow_rate.push(row.cell.follow_rate());
            agg.cell.like_rate.push(row.cell.like_rate());
            agg.follows_per_seed.push(row.cell.inbound_follows as f64);
        }

        for row in &results.table6 {
            let group = row.group.to_string();
            let agg = match report.table6.iter_mut().find(|a| a.group == group) {
                Some(a) => a,
                None => {
                    report.table6.push(Table6Agg {
                        group,
                        customers: Welford::new(),
                        long_term: Welford::new(),
                        short_term: Welford::new(),
                    });
                    report.table6.last_mut().expect("just pushed")
                }
            };
            agg.customers.push(row.customers as f64);
            agg.long_term.push(row.long_term as f64);
            agg.short_term.push(row.short_term as f64);
        }

        report.revenue.boostgram_cents.push(results.table8.truth_cents.0 as f64);
        report.revenue.instastar_cents.push(results.table8.truth_cents.1 as f64);
        let (no_out, monthly, one_time, ads) = results.table9.truth_cents;
        report
            .revenue
            .hublaagram_cents
            .push((no_out + monthly + one_time + ads) as f64);
    }

    for snapshot in metrics {
        match &mut report.metrics {
            Some(merged) => merged.merge(snapshot),
            None => report.metrics = Some(snapshot.clone()),
        }
    }

    for seed_report in latency {
        for row in &seed_report.rows {
            let service = row.service.to_string();
            let agg = match report.latency.iter_mut().find(|a| a.service == service) {
                Some(a) => a,
                None => {
                    report.latency.push(LatencyAgg {
                        service,
                        matched: Welford::new(),
                        mean_days: Welford::new(),
                        max_days: Welford::new(),
                        precision: Welford::new(),
                        recall: Welford::new(),
                    });
                    report.latency.last_mut().expect("just pushed")
                }
            };
            agg.matched.push(row.matched as f64);
            agg.mean_days.push(row.mean_days);
            agg.max_days.push(f64::from(row.max_days));
            agg.precision.push(row.score.precision());
            agg.recall.push(row.score.recall());
        }
    }

    report
}

/// `mean ± std` cell text.
fn pm(w: &Welford) -> String {
    format!("{:.1} ± {:.1}", w.mean(), w.std_dev())
}

/// `mean ± std` for rates, three decimals.
fn pm_rate(w: &Welford) -> String {
    format!("{:.3} ± {:.3}", w.mean(), w.std_dev())
}

impl AggregateReport {
    /// Count of Table 5 count-cells (outbound / in-likes / in-follows)
    /// with nonzero cross-seed sample variance, plus the total number of
    /// such cells. The CI smoke sweep asserts the first number is
    /// positive: seeds that did not actually vary would zero it.
    pub fn nonzero_variance_cells(&self) -> (usize, usize) {
        let mut nonzero = 0;
        let mut total = 0;
        for row in &self.table5 {
            for w in [&row.cell.outbound, &row.cell.inbound_likes, &row.cell.inbound_follows] {
                total += 1;
                if w.sample_variance() > 0.0 {
                    nonzero += 1;
                }
            }
        }
        (nonzero, total)
    }

    /// Render the full plain-text report.
    pub fn render(&self) -> String {
        let n = self.seeds.len();
        let mut out = String::new();
        out.push_str(&format!("== footsteps-sweep aggregate report (n={n} seeds) ==\n"));
        out.push_str(&format!(
            "seeds: {}\n",
            self.seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("per-seed StudyResults digests:\n");
        for (seed, digest) in &self.digests {
            out.push_str(&format!("  s{seed}: {digest:#018x}\n"));
        }
        out.push('\n');

        let mut t5 = Table::new(
            format!("Table 5 — honeypot reciprocation, mean ± std across {n} seeds"),
            &["Service", "Cohort", "Action", "Outbound", "In-likes", "In-follows", "Follow-rate", "Follows p50/p90"],
        );
        for row in &self.table5 {
            let pcts = percentiles(&row.follows_per_seed, &[0.50, 0.90])
                .map(|v| format!("{:.0}/{:.0}", v[0], v[1]))
                .unwrap_or_else(|| "n/a".into());
            t5.row(&[
                row.service.clone(),
                row.cohort.clone(),
                row.action.clone(),
                pm(&row.cell.outbound),
                pm(&row.cell.inbound_likes),
                pm(&row.cell.inbound_follows),
                pm_rate(&row.cell.follow_rate),
                pcts,
            ]);
        }
        out.push_str(&t5.render());
        out.push('\n');

        let mut t6 = Table::new(
            format!("Table 6 — customer bases, mean ± std across {n} seeds"),
            &["Group", "Customers", "Long-term", "Short-term"],
        );
        for row in &self.table6 {
            t6.row(&[
                row.group.clone(),
                pm(&row.customers),
                pm(&row.long_term),
                pm(&row.short_term),
            ]);
        }
        out.push_str(&t6.render());
        out.push('\n');

        let mut rev = Table::new(
            format!("Revenue ground truth (cents, revenue month), mean ± std across {n} seeds"),
            &["Service", "Gross"],
        );
        rev.row(&["Boostgram".into(), pm(&self.revenue.boostgram_cents)]);
        rev.row(&["Insta*".into(), pm(&self.revenue.instastar_cents)]);
        rev.row(&["Hublaagram".into(), pm(&self.revenue.hublaagram_cents)]);
        out.push_str(&rev.render());
        out.push('\n');

        if !self.latency.is_empty() {
            let mut lat = Table::new(
                format!(
                    "Detection latency — online vs batch detector (days), mean ± std across {n} seeds"
                ),
                &["Service", "Matched", "Mean latency", "Max latency", "Precision", "Recall"],
            );
            for row in &self.latency {
                lat.row(&[
                    row.service.clone(),
                    pm(&row.matched),
                    format!("{:.2} ± {:.2}", row.mean_days.mean(), row.mean_days.std_dev()),
                    pm(&row.max_days),
                    pm_rate(&row.precision),
                    pm_rate(&row.recall),
                ]);
            }
            out.push_str(&lat.render());
            out.push('\n');
        }

        if let Some(m) = &self.metrics {
            out.push_str(&format!(
                "metrics: {} phases merged across seeds, {} total counters\n",
                m.phases.len(),
                m.totals.counters.len()
            ));
        }
        let (nonzero, total) = self.nonzero_variance_cells();
        out.push_str(&format!(
            "cross-seed variance: {nonzero} of {total} Table 5 count cells nonzero\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_counting_and_render_shape() {
        let mut cell = CellAgg::default();
        for x in [10.0, 12.0] {
            cell.outbound.push(x);
            cell.inbound_likes.push(5.0); // constant: zero variance
            cell.inbound_follows.push(x / 2.0);
            cell.follow_rate.push(0.5);
            cell.like_rate.push(0.25);
        }
        let report = AggregateReport {
            seeds: vec![1, 2],
            digests: vec![(1, 0xa), (2, 0xb)],
            table5: vec![Table5Agg {
                service: "Boostgram".into(),
                cohort: "lived-in".into(),
                action: "Follow".into(),
                cell,
                follows_per_seed: vec![5.0, 6.0],
            }],
            table6: Vec::new(),
            revenue: RevenueAgg::default(),
            metrics: None,
            latency: Vec::new(),
        };
        // outbound and in-follows vary, in-likes is constant.
        assert_eq!(report.nonzero_variance_cells(), (2, 3));
        let text = report.render();
        assert!(text.contains("n=2 seeds"));
        assert!(text.contains("s1: 0x000000000000000a"));
        assert!(text.contains("±"));
        assert!(text.contains("cross-seed variance: 2 of 3"));
        assert!(
            !text.contains("Detection latency"),
            "latency table is omitted when no seed supplied a report"
        );
    }

    #[test]
    fn latency_rows_pool_across_seeds_by_service_label() {
        use footsteps_detect::Score;
        use footsteps_sim::prelude::ServiceId;
        use footsteps_stream::ServiceLatency;

        let row = |mean: f64, max: u32, fn_: usize| ServiceLatency {
            service: ServiceId::Boostgram,
            matched: 4,
            mean_days: mean,
            std_days: 0.0,
            max_days: max,
            score: Score { tp: 4, fp: 0, fn_ },
        };
        let seeds = [
            LatencyReport { rows: vec![row(2.0, 5, 0)] },
            LatencyReport { rows: vec![row(4.0, 9, 4)] },
        ];
        let report = aggregate(&[], &[], &seeds);
        assert_eq!(report.latency.len(), 1, "same service pools into one row");
        let agg = &report.latency[0];
        assert_eq!(agg.service, "Boostgram");
        assert_eq!(agg.mean_days.mean(), 3.0);
        assert_eq!(agg.max_days.mean(), 7.0);
        assert_eq!(agg.recall.mean(), 0.75, "recalls 1.0 and 0.5");
        let text = report.render();
        assert!(text.contains("Detection latency"));
        assert!(text.contains("3.00 ±"));
    }
}
