//! `sweep` — the multi-seed replication CLI.
//!
//! ```text
//! sweep run    --dir DIR --seeds N [--base-seed S] [--scenario quick|smoke|paper|scaled] [--workers W]
//! sweep resume --dir DIR [--workers W]
//! sweep report --dir DIR
//! ```
//!
//! `run` starts (or continues) a sweep of N seeds of one scenario;
//! `resume` continues from the manifest alone, skipping completed seeds
//! and resuming partial ones from their latest checkpoint; `report`
//! aggregates every completed seed into mean ± std paper tables.

use std::path::PathBuf;
use std::process::ExitCode;

use footsteps_core::Scenario;
use footsteps_sweep::manifest::JobStatus;
use footsteps_sweep::scheduler::{
    latency_path, metrics_path, read_latency, read_metrics, read_results, results_path,
    resume_sweep, run_sweep, SweepConfig, SweepOutcome,
};
use footsteps_sweep::{aggregate, SweepError};

const USAGE: &str = "usage:
  sweep run    --dir DIR --seeds N [--base-seed S] [--scenario quick|smoke|paper|scaled] [--workers W]
  sweep resume --dir DIR [--workers W]
  sweep report --dir DIR";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sweep: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the value following a `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{flag} needs a value\n{USAGE}")),
        },
    }
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{flag}: cannot parse `{v}`")),
    }
}

fn dir_arg(args: &[String]) -> Result<PathBuf, String> {
    flag_value(args, "--dir")?
        .map(PathBuf::from)
        .ok_or_else(|| format!("--dir is required\n{USAGE}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "resume" => cmd_resume(rest),
        "report" => cmd_report(rest),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn describe(outcome: &SweepOutcome) {
    let done = outcome
        .manifest
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Done)
        .count();
    println!(
        "sweep: ran {} job(s), skipped {} already-done, {done}/{} done",
        outcome.ran,
        outcome.skipped,
        outcome.manifest.jobs.len()
    );
    for job in &outcome.manifest.jobs {
        let digest = job
            .digest
            .map(|d| format!("{d:#018x}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  {} s{}: {:?} at {:?}, digest {digest}",
            job.variant, job.seed, job.status, job.phase
        );
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let dir = dir_arg(args)?;
    let n: u64 = parsed(args, "--seeds")?.ok_or_else(|| format!("--seeds is required\n{USAGE}"))?;
    if n == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let base: u64 = parsed(args, "--base-seed")?.unwrap_or(1);
    let workers: usize = parsed(args, "--workers")?.unwrap_or(2);
    let name = flag_value(args, "--scenario")?.unwrap_or_else(|| "smoke".into());
    // The seed in the variant's scenario is a placeholder; the scheduler
    // substitutes each job's seed.
    let scenario = match name.as_str() {
        "quick" => Scenario::quick(base),
        "smoke" => Scenario::smoke(base),
        "paper" => Scenario::paper(base),
        "scaled" => Scenario::default_scaled(base),
        other => return Err(format!("unknown scenario `{other}` (quick|smoke|paper|scaled)")),
    };
    let cfg = SweepConfig {
        dir,
        variants: vec![(name, scenario)],
        seeds: (base..base + n).collect(),
        workers,
    };
    let outcome = run_sweep(&cfg).map_err(|e| e.to_string())?;
    describe(&outcome);
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let dir = dir_arg(args)?;
    let workers: usize = parsed(args, "--workers")?.unwrap_or(2);
    let outcome = resume_sweep(&dir, workers).map_err(|e| e.to_string())?;
    describe(&outcome);
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let dir = dir_arg(args)?;
    let manifest = footsteps_sweep::manifest::Manifest::load(
        &footsteps_sweep::scheduler::manifest_path(&dir),
    )
    .map_err(|e| e.to_string())?;

    let mut per_seed = Vec::new();
    let mut metrics = Vec::new();
    let mut latency = Vec::new();
    for job in manifest.jobs.iter().filter(|j| j.status == JobStatus::Done) {
        let results = read_results(&results_path(&dir, &job.variant, job.seed))
            .map_err(|e| e.to_string())?;
        check_digest(&results, job).map_err(|e| e.to_string())?;
        per_seed.push(results);
        let mpath = metrics_path(&dir, &job.variant, job.seed);
        if mpath.exists() {
            metrics.push(read_metrics(&mpath).map_err(|e| e.to_string())?);
        }
        // Latency reports only exist for jobs characterized with the
        // stream attached — directories from older sweeps simply lack
        // them, so a missing file is not an error.
        let lpath = latency_path(&dir, &job.variant, job.seed);
        if lpath.exists() {
            latency.push(read_latency(&lpath).map_err(|e| e.to_string())?);
        }
    }
    if per_seed.is_empty() {
        return Err("no completed seeds to report on (run or resume the sweep first)".into());
    }
    print!("{}", aggregate::aggregate(&per_seed, &metrics, &latency).render());
    Ok(())
}

/// A results file that no longer matches its manifest digest means the
/// sweep directory was tampered with or rotted — refuse to aggregate it.
fn check_digest(
    results: &footsteps_core::results::StudyResults,
    job: &footsteps_sweep::manifest::JobEntry,
) -> Result<(), SweepError> {
    match job.digest {
        Some(expected) if results.digest() != expected => Err(SweepError::Corrupt {
            path: format!("results for {} s{}", job.variant, job.seed).into(),
            detail: format!(
                "digest {:#018x} != manifest {expected:#018x}",
                results.digest()
            ),
        }),
        _ => Ok(()),
    }
}
