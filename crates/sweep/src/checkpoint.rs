//! Phase-boundary checkpoints: a versioned envelope around a fully
//! serialized [`Study`].
//!
//! A checkpoint is a single JSON document:
//!
//! ```json
//! {"schema_version": 2, "scenario_hash": …, "phase": "Characterized", "study": {…}}
//! ```
//!
//! `schema_version` gates incompatible layout changes, `scenario_hash`
//! ties the file to the exact scenario it was produced from (so a sweep
//! cannot resume seed 7's world into seed 8's job), and the duplicated
//! `phase` marker cross-checks the embedded study as a cheap integrity
//! probe. Files are written to a `.tmp` sibling and atomically renamed,
//! so a kill mid-write leaves either the old checkpoint or none — never
//! a truncated one under the real name.
//!
//! Determinism contract: the `Study` serialization covers every RNG
//! stream position, arena and pending queue, so a study loaded from any
//! phase-boundary checkpoint replays the exact byte stream of the run
//! that wrote it. The crate's test suite pins this against the golden
//! smoke digest.

use std::fs;
use std::path::{Path, PathBuf};

use footsteps_core::{Phase, Scenario, Study};

use crate::SweepError;

/// Version of the checkpoint envelope + `Study` layout this build writes
/// and reads. Bump on any change to either.
///
/// v2: `Study` gained the skip-serialized `stream` outcome and `Platform`
/// the skip-serialized event sink (DESIGN.md §8). The wire format is
/// unchanged, but the structural pin moves with the layout.
pub const SCHEMA_VERSION: u32 = 2;

/// Stable FNV-1a over arbitrary bytes — same construction as
/// [`footsteps_core::results::StudyResults::digest`], shared here for
/// scenario hashes and manifest digests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Identity hash of a scenario, for tying checkpoints and manifests to
/// their configuration. `worker_threads` is normalized out: it comes from
/// the environment, and results are digest-identical across thread counts,
/// so a checkpoint written on a 16-core box must resume on a 2-core one.
pub fn scenario_hash(scenario: &Scenario) -> u64 {
    let mut normalized = scenario.clone();
    normalized.worker_threads = 1;
    let json = serde_json::to_string(&normalized).expect("Scenario serializes");
    fnv1a(json.as_bytes())
}

/// Write `bytes` to `path` atomically: a full write to a `.tmp` sibling
/// followed by a rename, so readers never observe a partial file.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SweepError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = path.with_file_name(format!("{name}.tmp"));
    fs::write(&tmp, bytes).map_err(|source| SweepError::Io { path: tmp.clone(), source })?;
    fs::rename(&tmp, path).map_err(|source| SweepError::Io { path: path.to_path_buf(), source })
}

/// Serialize `study` into a versioned envelope at `path` (atomic).
///
/// Compact JSON: a paper-scale study is large, and checkpoints are read
/// by machines, not people.
pub fn save(study: &Study, path: &Path) -> Result<(), SweepError> {
    let hash = scenario_hash(&study.scenario);
    let phase = serde_json::to_string(&study.phase).expect("Phase serializes");
    let body = serde_json::to_string(study).expect("Study serializes");
    let text = format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"scenario_hash\":{hash},\
         \"phase\":{phase},\"study\":{body}}}"
    );
    write_atomic(path, text.as_bytes())
}

fn corrupt(path: &Path, detail: impl Into<String>) -> SweepError {
    SweepError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
}

fn field<T: serde::Deserialize>(v: &serde::Value, name: &str, path: &Path) -> Result<T, SweepError> {
    let f = v
        .get_field(name)
        .ok_or_else(|| corrupt(path, format!("missing envelope field `{name}`")))?;
    T::from_value(f).map_err(|e| corrupt(path, format!("envelope field `{name}`: {e}")))
}

/// Load a checkpoint and validate it against `expected`: envelope parse,
/// schema version, scenario hash and the phase cross-check all fail with
/// a typed [`SweepError`] rather than a panic or a silently wrong world.
pub fn load(path: &Path, expected: &Scenario) -> Result<Study, SweepError> {
    let text = fs::read_to_string(path)
        .map_err(|source| SweepError::Io { path: path.to_path_buf(), source })?;
    let v = serde_json::parse(&text).map_err(|e| corrupt(path, e.0))?;

    let found: u32 = field(&v, "schema_version", path)?;
    if found != SCHEMA_VERSION {
        return Err(SweepError::VersionMismatch {
            path: path.to_path_buf(),
            found,
            expected: SCHEMA_VERSION,
        });
    }

    let found_hash: u64 = field(&v, "scenario_hash", path)?;
    let expected_hash = scenario_hash(expected);
    if found_hash != expected_hash {
        return Err(SweepError::ScenarioMismatch {
            path: path.to_path_buf(),
            found: found_hash,
            expected: expected_hash,
        });
    }

    let phase: Phase = field(&v, "phase", path)?;
    let study: Study = field(&v, "study", path)?;
    if study.phase != phase {
        return Err(corrupt(
            path,
            format!("envelope says {phase:?} but the study is at {:?}", study.phase),
        ));
    }
    if scenario_hash(&study.scenario) != found_hash {
        return Err(corrupt(path, "embedded scenario disagrees with the envelope hash"));
    }
    Ok(study)
}

/// Canonical checkpoint filename for one job at one phase boundary.
pub fn file_name(variant: &str, seed: u64, phase: Phase) -> String {
    let tag = match phase {
        Phase::Setup => "setup",
        Phase::Characterized => "characterized",
        Phase::NarrowDone => "narrow-done",
        Phase::BroadDone => "broad-done",
        Phase::Finished => "finished",
    };
    format!("ckpt_{variant}_s{seed}_{tag}.json")
}

/// Canonical checkpoint path under a sweep directory.
pub fn path_for(dir: &Path, variant: &str, seed: u64, phase: Phase) -> PathBuf {
    dir.join(file_name(variant, seed, phase))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_hash_normalizes_worker_threads() {
        let mut a = Scenario::smoke(7);
        let mut b = Scenario::smoke(7);
        a.worker_threads = 1;
        b.worker_threads = 8;
        assert_eq!(scenario_hash(&a), scenario_hash(&b));
        assert_ne!(scenario_hash(&a), scenario_hash(&Scenario::smoke(8)));
    }

    #[test]
    fn file_names_are_distinct_per_phase_and_job() {
        let mut names: Vec<String> = Vec::new();
        for phase in [
            Phase::Setup,
            Phase::Characterized,
            Phase::NarrowDone,
            Phase::BroadDone,
            Phase::Finished,
        ] {
            names.push(file_name("smoke", 1, phase));
            names.push(file_name("smoke", 2, phase));
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
