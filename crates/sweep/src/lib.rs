//! # footsteps-sweep
//!
//! Multi-seed replication orchestrator for the `footsteps` reproduction.
//!
//! A single [`footsteps_core::Study`] answers "what does seed 7 say?";
//! the paper's tables deserve error bars. This crate runs N seeds × M
//! scenario variants on a bounded worker pool, checkpointing every study
//! at each phase boundary so a killed sweep resumes where it stopped, and
//! aggregates the per-seed [`footsteps_core::results::StudyResults`] into
//! mean ± std summaries.
//!
//! The three pillars:
//!
//! * [`checkpoint`] — a versioned, scenario-hashed envelope around a fully
//!   serialized `Study`, written atomically. Resuming from any boundary
//!   reproduces the uninterrupted run byte-for-byte (pinned by the golden
//!   digest in this crate's test suite).
//! * [`manifest`] + [`scheduler`] — an on-disk job table (pending /
//!   running / done, with result digests) and a `std::thread::scope`
//!   worker pool that skips completed seeds and resumes partial ones.
//! * [`aggregate`] — streaming Welford mean/variance over per-seed
//!   results plus merged metrics snapshots, rendered as paper tables
//!   with error bars.
//!
//! The `sweep` binary (`sweep run | resume | report`) drives all three.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;

pub mod aggregate;
pub mod checkpoint;
pub mod manifest;
pub mod scheduler;

/// Everything that can go wrong in a sweep. Every variant carries the
/// offending path so `sweep resume` failures point at the file to inspect
/// or delete, rather than panicking or silently recomputing.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem failure reading or writing a sweep artifact.
    Io {
        /// File being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A checkpoint, manifest or results file failed to parse or failed
    /// an internal consistency check (truncated write, hand-edited JSON,
    /// bit rot).
    Corrupt {
        /// The unreadable file.
        path: PathBuf,
        /// What exactly did not check out.
        detail: String,
    },
    /// The file was written by a different checkpoint schema.
    VersionMismatch {
        /// The file with the foreign version.
        path: PathBuf,
        /// Version found in the file.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The checkpoint belongs to a different scenario than the one the
    /// sweep is resuming (seed, scale or window edits between runs).
    ScenarioMismatch {
        /// The mismatched checkpoint.
        path: PathBuf,
        /// Scenario hash recorded in the file.
        found: u64,
        /// Scenario hash of the sweep being resumed.
        expected: u64,
    },
    /// The requested sweep configuration is invalid or conflicts with an
    /// existing manifest in the same directory.
    Config(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::Corrupt { path, detail } => {
                write!(f, "{}: corrupt: {detail}", path.display())
            }
            Self::VersionMismatch { path, found, expected } => write!(
                f,
                "{}: checkpoint schema v{found}, this build reads v{expected} \
                 (re-run the sweep from scratch or use the matching binary)",
                path.display()
            ),
            Self::ScenarioMismatch { path, found, expected } => write!(
                f,
                "{}: checkpoint is for scenario {found:#018x}, sweep expects {expected:#018x} \
                 (the scenario changed between runs; delete the directory to start over)",
                path.display()
            ),
            Self::Config(msg) => write!(f, "invalid sweep configuration: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
