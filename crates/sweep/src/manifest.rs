//! The on-disk sweep manifest: one JSON file tracking every (variant,
//! seed) job's status, latest checkpointed phase and result digest.
//!
//! The manifest is the sweep's source of truth across process lifetimes:
//! `sweep resume` reads only this file (plus the checkpoints it names)
//! to decide what is left to do. It is rewritten atomically after every
//! state transition, so a kill at any instant leaves a readable manifest
//! that is at most one transition stale — and a stale `Running` entry
//! simply resumes from its latest checkpoint.
//!
//! Timestamps are wall-clock seconds for operator forensics only; they
//! never feed a digest (`crates/sweep` carries the lint's wall-clock
//! exemption for exactly this bookkeeping).

use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use footsteps_core::{Phase, Scenario};
use serde::{Deserialize, Serialize};

use crate::checkpoint::write_atomic;
use crate::SweepError;

/// Manifest layout version; bump on incompatible changes.
pub const MANIFEST_VERSION: u32 = 1;

/// Lifecycle of one (variant, seed) job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Not started (or reset after a failure).
    Pending,
    /// Claimed by a worker; after a kill this means "partially done,
    /// resume from the latest checkpoint".
    Running,
    /// Finished; `digest` is recorded and the results file exists.
    Done,
}

/// One seed of one scenario variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobEntry {
    /// Variant name (key into [`Manifest::variants`]).
    pub variant: String,
    /// The seed this job runs the variant's scenario with.
    pub seed: u64,
    /// Where the job is in its lifecycle.
    pub status: JobStatus,
    /// FNV-1a digest of the per-seed `StudyResults` JSON, recorded the
    /// moment characterization completes (the golden-digest convention).
    pub digest: Option<u64>,
    /// Latest phase boundary with a checkpoint on disk.
    pub phase: Phase,
    /// Wall-clock seconds since the epoch of the last transition.
    /// Operator bookkeeping only — never digested, never compared.
    pub updated_unix: u64,
}

/// The sweep's on-disk job table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Layout version of this file.
    pub schema_version: u32,
    /// Named scenario variants; each job's scenario is the variant's with
    /// the job's seed substituted.
    pub variants: Vec<(String, Scenario)>,
    /// Seeds every variant runs with.
    pub seeds: Vec<u64>,
    /// One entry per (variant, seed), variant-major, in sweep order.
    pub jobs: Vec<JobEntry>,
}

/// Current wall-clock seconds since the Unix epoch (0 if the clock is
/// before it). Bookkeeping only.
pub fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Manifest {
    /// A fresh manifest: every (variant, seed) job pending.
    pub fn new(variants: Vec<(String, Scenario)>, seeds: Vec<u64>) -> Self {
        let jobs = variants
            .iter()
            .flat_map(|(name, _)| {
                seeds.iter().map(|&seed| JobEntry {
                    variant: name.clone(),
                    seed,
                    status: JobStatus::Pending,
                    digest: None,
                    phase: Phase::Setup,
                    updated_unix: now_unix(),
                })
            })
            .collect();
        Self { schema_version: MANIFEST_VERSION, variants, seeds, jobs }
    }

    /// Load and validate a manifest. Parse failures and foreign versions
    /// are typed errors, not panics.
    pub fn load(path: &Path) -> Result<Self, SweepError> {
        let text = std::fs::read_to_string(path)
            .map_err(|source| SweepError::Io { path: path.to_path_buf(), source })?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| SweepError::Corrupt { path: path.to_path_buf(), detail: e.0 })?;
        if manifest.schema_version != MANIFEST_VERSION {
            return Err(SweepError::VersionMismatch {
                path: path.to_path_buf(),
                found: manifest.schema_version,
                expected: MANIFEST_VERSION,
            });
        }
        for job in &manifest.jobs {
            if !manifest.variants.iter().any(|(name, _)| *name == job.variant) {
                return Err(SweepError::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("job references unknown variant `{}`", job.variant),
                });
            }
        }
        Ok(manifest)
    }

    /// Atomically write the manifest (pretty JSON — it is small and
    /// operators read it).
    pub fn save(&self, path: &Path) -> Result<(), SweepError> {
        let text = serde_json::to_string_pretty(self).expect("Manifest serializes");
        write_atomic(path, text.as_bytes())
    }

    /// Mutable access to one job entry.
    ///
    /// # Panics
    /// Panics if the (variant, seed) pair is not in the table — sweep
    /// code only addresses jobs it created.
    pub fn job_mut(&mut self, variant: &str, seed: u64) -> &mut JobEntry {
        self.jobs
            .iter_mut()
            .find(|j| j.variant == variant && j.seed == seed)
            .expect("job exists in manifest")
    }

    /// Read access to one job entry, if present.
    pub fn job(&self, variant: &str, seed: u64) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.variant == variant && j.seed == seed)
    }

    /// True when every job is `Done`.
    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| j.status == JobStatus::Done)
    }

    /// The scenario one job runs: its variant's scenario with the job
    /// seed substituted.
    pub fn scenario_for(&self, variant: &str, seed: u64) -> Option<Scenario> {
        let (_, base) = self.variants.iter().find(|(name, _)| name == variant)?;
        let mut s = base.clone();
        s.seed = seed;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("footsteps-manifest-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("manifest.json");
        let mut m = Manifest::new(vec![("smoke".into(), Scenario::smoke(1))], vec![1, 2]);
        m.job_mut("smoke", 2).status = JobStatus::Done;
        m.job_mut("smoke", 2).digest = Some(0xdead_beef);
        m.save(&path).expect("save");
        let back = Manifest::load(&path).expect("load");
        assert_eq!(back.jobs.len(), 2);
        assert_eq!(back.job("smoke", 2).unwrap().status, JobStatus::Done);
        assert_eq!(back.job("smoke", 2).unwrap().digest, Some(0xdead_beef));
        assert!(!back.all_done());
        assert_eq!(back.scenario_for("smoke", 2).unwrap().seed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_and_corruption_are_typed_errors() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("manifest.json");
        let m = Manifest::new(vec![("smoke".into(), Scenario::smoke(1))], vec![1]);
        m.save(&path).expect("save");

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"schema_version\": 1", "\"schema_version\": 99"))
            .unwrap();
        match Manifest::load(&path) {
            Err(SweepError::VersionMismatch { found: 99, expected: MANIFEST_VERSION, .. }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }

        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(Manifest::load(&path), Err(SweepError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
