//! The sweep scheduler: a bounded `std::thread::scope` worker pool that
//! drives every (variant, seed) job through the full study pipeline,
//! checkpointing at each phase boundary and recording progress in the
//! [`Manifest`].
//!
//! Restart semantics (the whole point):
//!
//! * a job marked `Done` whose results file exists is **skipped** —
//!   relaunching a finished sweep is a no-op;
//! * a job with checkpoints on disk resumes from the **latest** boundary
//!   (scenario-hash validated), recomputing nothing before it;
//! * everything else starts from scratch.
//!
//! Per-seed `StudyResults` are collected the moment characterization
//! completes — the same point the determinism suite's golden digest is
//! defined at — and written before the `Characterized` checkpoint, so a
//! checkpoint at or past that boundary implies the results file exists.
//! A kill between the two writes only costs re-running characterization,
//! which is deterministic and reproduces the identical results file.
//!
//! Scheduling order never affects results: jobs are independent and each
//! digest depends only on its scenario, so any interleaving of the pool
//! produces the same manifest digests.

use std::fs;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use footsteps_analysis::stats::Welford;
use footsteps_core::results::StudyResults;
use footsteps_core::{Phase, Scenario, Study};
use footsteps_obs::{progress, MetricsSnapshot, Stopwatch};
use footsteps_stream::LatencyReport;

use crate::checkpoint::{self, scenario_hash, write_atomic};
use crate::manifest::{now_unix, JobEntry, JobStatus, Manifest};
use crate::SweepError;

/// What to run: N seeds × M scenario variants on a bounded pool.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Directory for the manifest, checkpoints and per-seed results.
    pub dir: PathBuf,
    /// Named scenario variants (the seed field is overridden per job).
    pub variants: Vec<(String, Scenario)>,
    /// Seeds to run every variant with.
    pub seeds: Vec<u64>,
    /// Worker threads; each worker runs whole jobs, one at a time.
    pub workers: usize,
}

/// What a sweep invocation did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Final manifest state (also on disk).
    pub manifest: Manifest,
    /// Jobs that executed at least one phase.
    pub ran: usize,
    /// Jobs skipped because they were already done.
    pub skipped: usize,
}

/// The manifest's location under a sweep directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Per-job `StudyResults` JSON location.
pub fn results_path(dir: &Path, variant: &str, seed: u64) -> PathBuf {
    dir.join(format!("results_{variant}_s{seed}.json"))
}

/// Per-job metrics snapshot location (results JSON deliberately excludes
/// metrics, so they travel in a sibling file).
pub fn metrics_path(dir: &Path, variant: &str, seed: u64) -> PathBuf {
    dir.join(format!("metrics_{variant}_s{seed}.json"))
}

/// Per-job Chrome-trace location (written next to the job's checkpoints
/// at every phase boundary; observability only, never digested).
pub fn trace_path(dir: &Path, variant: &str, seed: u64) -> PathBuf {
    dir.join(format!("trace_{variant}_s{seed}.json"))
}

/// Per-job detection-latency report location (online vs batch detector,
/// DESIGN.md §8; written at the `Characterized` boundary alongside the
/// results, for jobs that ran with the stream attached).
pub fn latency_path(dir: &Path, variant: &str, seed: u64) -> PathBuf {
    dir.join(format!("latency_{variant}_s{seed}.json"))
}

/// Read back a per-job results file.
pub fn read_results(path: &Path) -> Result<StudyResults, SweepError> {
    let text = fs::read_to_string(path)
        .map_err(|source| SweepError::Io { path: path.to_path_buf(), source })?;
    serde_json::from_str(&text)
        .map_err(|e| SweepError::Corrupt { path: path.to_path_buf(), detail: e.0 })
}

/// Read back a per-job metrics snapshot.
pub fn read_metrics(path: &Path) -> Result<MetricsSnapshot, SweepError> {
    let text = fs::read_to_string(path)
        .map_err(|source| SweepError::Io { path: path.to_path_buf(), source })?;
    serde_json::from_str(&text)
        .map_err(|e| SweepError::Corrupt { path: path.to_path_buf(), detail: e.0 })
}

/// Read back a per-job detection-latency report.
pub fn read_latency(path: &Path) -> Result<LatencyReport, SweepError> {
    let text = fs::read_to_string(path)
        .map_err(|source| SweepError::Io { path: path.to_path_buf(), source })?;
    serde_json::from_str(&text)
        .map_err(|e| SweepError::Corrupt { path: path.to_path_buf(), detail: e.0 })
}

/// Start (or continue) a sweep. If the directory already holds a
/// manifest, the requested configuration must match it — same variants
/// (by name and scenario hash) and same seed set — and completed jobs
/// are skipped; otherwise a fresh manifest is created.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepOutcome, SweepError> {
    if cfg.variants.is_empty() || cfg.seeds.is_empty() {
        return Err(SweepError::Config("need at least one variant and one seed".into()));
    }
    let mut names: Vec<&str> = cfg.variants.iter().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != cfg.variants.len() {
        return Err(SweepError::Config("variant names must be unique".into()));
    }
    let mut seeds = cfg.seeds.clone();
    seeds.sort_unstable();
    seeds.dedup();
    if seeds.len() != cfg.seeds.len() {
        return Err(SweepError::Config("seeds must be unique".into()));
    }

    fs::create_dir_all(&cfg.dir)
        .map_err(|source| SweepError::Io { path: cfg.dir.clone(), source })?;
    let mpath = manifest_path(&cfg.dir);
    let manifest = if mpath.exists() {
        let existing = Manifest::load(&mpath)?;
        check_compatible(&existing, cfg)?;
        existing
    } else {
        let fresh = Manifest::new(cfg.variants.clone(), cfg.seeds.clone());
        fresh.save(&mpath)?;
        fresh
    };
    schedule(&cfg.dir, manifest, cfg.workers)
}

/// Continue a sweep from its manifest alone (configuration comes from
/// the file, not the command line).
pub fn resume_sweep(dir: &Path, workers: usize) -> Result<SweepOutcome, SweepError> {
    let manifest = Manifest::load(&manifest_path(dir))?;
    schedule(dir, manifest, workers)
}

fn check_compatible(existing: &Manifest, cfg: &SweepConfig) -> Result<(), SweepError> {
    let same_variants = existing.variants.len() == cfg.variants.len()
        && existing.variants.iter().zip(&cfg.variants).all(|((en, es), (cn, cs))| {
            en == cn && scenario_hash(es) == scenario_hash(cs)
        });
    if !same_variants {
        return Err(SweepError::Config(
            "directory already holds a sweep with different scenario variants; \
             pick a fresh directory or delete the old one"
                .into(),
        ));
    }
    if existing.seeds != cfg.seeds {
        return Err(SweepError::Config(
            "directory already holds a sweep with a different seed set; \
             pick a fresh directory or delete the old one"
                .into(),
        ));
    }
    Ok(())
}

/// Shared sweep progress: completed-job counts plus a Welford accumulator
/// over completed job durations, which prices the wall-clock ETA lines.
/// Counts are deterministic; durations (and thus the ETA) are wall-clock
/// and never leave the `progress!` stream.
struct SweepProgress {
    total: usize,
    done: usize,
    skipped: usize,
    durations: Welford,
}

impl SweepProgress {
    /// One `progress!` line after a job finishes: counts, the finished
    /// job's own duration, the running mean, and the ETA for what's left.
    fn report(&self, variant: &str, seed: u64, secs: f64) {
        let remaining = self.total.saturating_sub(self.done + self.skipped);
        let eta = self.durations.mean() * remaining as f64;
        progress!(
            "sweep {done}/{total} done ({skipped} skipped) | {variant} s{seed} {secs:.1}s | \
             mean {mean:.1}s | eta {eta:.0}s",
            done = self.done,
            total = self.total,
            skipped = self.skipped,
            mean = self.durations.mean(),
        );
    }
}

/// Render the manifest's job table deterministically: one row per job in
/// manifest order, with status, latest phase boundary, and digest. Pure
/// function of the manifest — no wall-clock, byte-identical for any
/// worker count or scheduling interleaving.
pub fn progress_table(m: &Manifest) -> String {
    let name_w = m.jobs.iter().map(|j| j.variant.len()).max().unwrap_or(7).max(7);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_w$}  {:>6}  {:<8}  {:<13}  digest", "variant", "seed", "status", "phase");
    for j in &m.jobs {
        let status = match j.status {
            JobStatus::Pending => "pending",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        };
        let digest = match j.digest {
            Some(d) => format!("0x{d:016x}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>6}  {:<8}  {:<13}  {}",
            j.variant,
            j.seed,
            status,
            format!("{:?}", j.phase),
            digest
        );
    }
    out
}

fn schedule(dir: &Path, manifest: Manifest, workers: usize) -> Result<SweepOutcome, SweepError> {
    let workers = workers.max(1);
    let jobs: Vec<(String, u64)> =
        manifest.jobs.iter().map(|j| (j.variant.clone(), j.seed)).collect();
    let mpath = manifest_path(dir);
    let progress = Mutex::new(SweepProgress {
        total: jobs.len(),
        done: 0,
        skipped: 0,
        durations: Welford::new(),
    });
    let shared = Mutex::new(manifest);
    let next = AtomicUsize::new(0);
    let ran = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let errors: Mutex<Vec<SweepError>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|| loop {
                if !errors.lock().expect("errors lock").is_empty() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some((variant, seed)) = jobs.get(i) else { break };
                let watch = Stopwatch::start();
                match run_job(dir, &mpath, &shared, variant, *seed) {
                    Ok(true) => {
                        ran.fetch_add(1, Ordering::SeqCst);
                        let mut p = progress.lock().expect("progress lock");
                        p.done += 1;
                        p.durations.push(watch.elapsed_secs());
                        p.report(variant, *seed, watch.elapsed_secs());
                    }
                    Ok(false) => {
                        skipped.fetch_add(1, Ordering::SeqCst);
                        progress.lock().expect("progress lock").skipped += 1;
                    }
                    Err(e) => {
                        errors.lock().expect("errors lock").push(e);
                        break;
                    }
                }
            });
        }
    });

    let manifest = shared.into_inner().expect("manifest lock");
    for line in progress_table(&manifest).lines() {
        progress!("{line}");
    }
    if let Some(e) = errors.into_inner().expect("errors lock").into_iter().next() {
        return Err(e);
    }
    Ok(SweepOutcome {
        manifest,
        ran: ran.into_inner(),
        skipped: skipped.into_inner(),
    })
}

/// Record a manifest transition: mutate the entry, stamp it, persist.
fn touch(
    shared: &Mutex<Manifest>,
    mpath: &Path,
    variant: &str,
    seed: u64,
    f: impl FnOnce(&mut JobEntry),
) -> Result<(), SweepError> {
    let mut m = shared.lock().expect("manifest lock");
    let entry = m.job_mut(variant, seed);
    f(entry);
    entry.updated_unix = now_unix();
    m.save(mpath)
}

/// Run (or skip, or resume) one job. Returns `true` if any phase
/// actually executed.
fn run_job(
    dir: &Path,
    mpath: &Path,
    shared: &Mutex<Manifest>,
    variant: &str,
    seed: u64,
) -> Result<bool, SweepError> {
    let rpath = results_path(dir, variant, seed);
    let scenario = {
        let m = shared.lock().expect("manifest lock");
        let entry = m.job(variant, seed).expect("scheduled job is in the manifest");
        if entry.status == JobStatus::Done && rpath.exists() {
            return Ok(false);
        }
        m.scenario_for(variant, seed)
            .ok_or_else(|| SweepError::Config(format!("unknown variant `{variant}`")))?
    };
    touch(shared, mpath, variant, seed, |j| j.status = JobStatus::Running)?;

    // Latest usable checkpoint wins. Boundaries at or past Characterized
    // additionally require the results file (written just before that
    // checkpoint); without it, fall back far enough to regenerate it.
    let mut resumed = None;
    for phase in [
        Phase::Finished,
        Phase::BroadDone,
        Phase::NarrowDone,
        Phase::Characterized,
        Phase::Setup,
    ] {
        let p = checkpoint::path_for(dir, variant, seed, phase);
        if !p.exists() || (phase >= Phase::Characterized && !rpath.exists()) {
            continue;
        }
        resumed = Some(checkpoint::load(&p, &scenario)?);
        break;
    }
    let mut study = match resumed {
        Some(s) => s,
        None => {
            let s = Study::new(scenario.clone());
            checkpoint::save(&s, &checkpoint::path_for(dir, variant, seed, Phase::Setup))?;
            s
        }
    };
    // Jobs that will run characterization do so with the streaming
    // detector attached (no recorder), so every seed gets a
    // detection-latency record next to its results. Jobs resumed past
    // Setup wrote theirs in the invocation that characterized them.
    if study.phase == Phase::Setup {
        study
            .attach_stream(None)
            .expect("stream without a recorder cannot fail to attach");
    }
    // Every sweep job gets a Chrome trace next to its checkpoints,
    // regardless of `FOOTSTEPS_TRACE_OUT`. A resumed job's trace covers
    // only the phases run since the resume (the span tree lives in memory,
    // not in the checkpoint), which is exactly what this invocation did.
    study.platform.obs.timings.enable_events();
    let tpath = trace_path(dir, variant, seed);

    let mut digest = if study.phase >= Phase::Characterized {
        Some(read_results(&rpath)?.digest())
    } else {
        None
    };
    let start_phase = study.phase;
    touch(shared, mpath, variant, seed, |j| {
        j.phase = start_phase;
        j.digest = digest;
    })?;

    while study.phase < Phase::Finished {
        match study.phase {
            Phase::Setup => study.run_characterization(),
            Phase::Characterized => study.run_narrow(),
            Phase::NarrowDone => study.run_broad(),
            Phase::BroadDone => study.run_epilogue(),
            Phase::Finished => unreachable!("loop guard"),
        }
        if study.phase == Phase::Characterized {
            let results = StudyResults::collect(&study);
            write_atomic(&rpath, results.to_json().as_bytes())?;
            if let Some(snapshot) = &results.metrics {
                write_atomic(
                    &metrics_path(dir, variant, seed),
                    snapshot.to_json().as_bytes(),
                )?;
            }
            digest = Some(results.digest());
            if let Some(latency) = study.detection_latency() {
                let mut body = serde_json::to_string_pretty(&latency)
                    .expect("latency report serializes");
                body.push('\n');
                write_atomic(&latency_path(dir, variant, seed), body.as_bytes())?;
            }
        }
        checkpoint::save(&study, &checkpoint::path_for(dir, variant, seed, study.phase))?;
        study
            .platform
            .obs
            .export_trace_to(&tpath)
            .map_err(|source| SweepError::Io { path: tpath.clone(), source })?;
        let reached = study.phase;
        touch(shared, mpath, variant, seed, |j| {
            j.phase = reached;
            j.digest = digest;
        })?;
    }

    touch(shared, mpath, variant, seed, |j| {
        j.status = JobStatus::Done;
        j.digest = digest;
    })?;
    Ok(true)
}
