//! The tentpole guarantee: a study resumed from **any** phase-boundary
//! checkpoint reproduces the uninterrupted run's `StudyResults` digests
//! byte-for-byte.
//!
//! The characterization-point digest is the same golden value the
//! determinism suite pins (`tests/tests/determinism.rs`); the post-
//! characterization boundaries are compared against the uninterrupted
//! run's final-state digest computed in this test (results are *not*
//! phase-stable — cumulative login counters feed Figure 2 — so each
//! boundary is checked at the phase where its digest is defined).

use std::path::PathBuf;

use footsteps_core::results::StudyResults;
use footsteps_core::{Phase, Scenario, Study};
use footsteps_sweep::checkpoint;
use footsteps_sweep::SweepError;

/// The determinism suite's golden digest for `Scenario::smoke(7)`. It is
/// worker-thread invariant (pinned by `tests/tests/determinism.rs`), so
/// this suite runs on four threads for wall time.
const GOLDEN_SMOKE_DIGEST: u64 = 0xce8a_eb34_fb9f_e096;

fn smoke(seed: u64) -> Scenario {
    let mut s = Scenario::smoke(seed);
    s.worker_threads = 4;
    s
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("footsteps-resume-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn resume_from_every_phase_boundary_reproduces_uninterrupted_digests() {
    let dir = tmp_dir("boundaries");
    let sc = smoke(7);
    let ckpt = |phase| checkpoint::path_for(&dir, "smoke", 7, phase);

    // Uninterrupted run, checkpointing at all five boundaries.
    let mut study = Study::new(sc.clone());
    checkpoint::save(&study, &ckpt(Phase::Setup)).expect("save setup");
    study.run_characterization();
    checkpoint::save(&study, &ckpt(Phase::Characterized)).expect("save characterized");
    assert_eq!(
        StudyResults::collect(&study).digest(),
        GOLDEN_SMOKE_DIGEST,
        "uninterrupted characterization digest must match the determinism suite"
    );
    study.run_narrow();
    checkpoint::save(&study, &ckpt(Phase::NarrowDone)).expect("save narrow-done");
    study.run_broad();
    checkpoint::save(&study, &ckpt(Phase::BroadDone)).expect("save broad-done");
    study.run_epilogue();
    checkpoint::save(&study, &ckpt(Phase::Finished)).expect("save finished");
    let final_digest = StudyResults::collect(&study).digest();
    drop(study);

    // Setup boundary: the whole characterization replays identically.
    let mut resumed = checkpoint::load(&ckpt(Phase::Setup), &sc).expect("load setup");
    assert_eq!(resumed.phase, Phase::Setup);
    resumed.run_characterization();
    assert_eq!(StudyResults::collect(&resumed).digest(), GOLDEN_SMOKE_DIGEST);

    // Characterized boundary: the golden digest is readable immediately,
    // and the remaining phases replay to the uninterrupted end state.
    let mut resumed = checkpoint::load(&ckpt(Phase::Characterized), &sc).expect("load characterized");
    assert_eq!(resumed.phase, Phase::Characterized);
    assert_eq!(StudyResults::collect(&resumed).digest(), GOLDEN_SMOKE_DIGEST);
    resumed.run_narrow();
    resumed.run_broad();
    resumed.run_epilogue();
    assert_eq!(StudyResults::collect(&resumed).digest(), final_digest);

    // NarrowDone boundary.
    let mut resumed = checkpoint::load(&ckpt(Phase::NarrowDone), &sc).expect("load narrow-done");
    assert_eq!(resumed.phase, Phase::NarrowDone);
    resumed.run_broad();
    resumed.run_epilogue();
    assert_eq!(StudyResults::collect(&resumed).digest(), final_digest);

    // BroadDone boundary.
    let mut resumed = checkpoint::load(&ckpt(Phase::BroadDone), &sc).expect("load broad-done");
    assert_eq!(resumed.phase, Phase::BroadDone);
    resumed.run_epilogue();
    assert_eq!(StudyResults::collect(&resumed).digest(), final_digest);

    // Finished boundary: pure state restoration.
    let resumed = checkpoint::load(&ckpt(Phase::Finished), &sc).expect("load finished");
    assert_eq!(resumed.phase, Phase::Finished);
    assert_eq!(StudyResults::collect(&resumed).digest(), final_digest);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_mismatched_checkpoints_fail_with_typed_errors() {
    let dir = tmp_dir("corruption");
    let sc = smoke(3);
    let study = Study::new(sc.clone());
    let path = dir.join("ckpt.json");
    checkpoint::save(&study, &path).expect("save");
    let good = std::fs::read_to_string(&path).expect("read back");

    // Sanity: the pristine file loads.
    checkpoint::load(&path, &sc).expect("pristine checkpoint loads");

    // Truncated write (what a kill without the atomic rename would leave).
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    match checkpoint::load(&path, &sc) {
        Err(SweepError::Corrupt { .. }) => {}
        other => panic!("truncated file: expected Corrupt, got {other:?}"),
    }

    // Outright garbage.
    std::fs::write(&path, "not json at all {").unwrap();
    assert!(matches!(checkpoint::load(&path, &sc), Err(SweepError::Corrupt { .. })));

    // Foreign schema version, with a readable message.
    let version_field = format!("\"schema_version\":{}", checkpoint::SCHEMA_VERSION);
    std::fs::write(&path, good.replacen(&version_field, "\"schema_version\":999", 1))
        .unwrap();
    match checkpoint::load(&path, &sc) {
        Err(e @ SweepError::VersionMismatch { found: 999, .. }) => {
            let msg = e.to_string();
            assert!(msg.contains("v999"), "message should name the version: {msg}");
        }
        other => panic!("foreign version: expected VersionMismatch, got {other:?}"),
    }

    // Right file, wrong scenario (a different seed).
    std::fs::write(&path, &good).unwrap();
    match checkpoint::load(&path, &smoke(4)) {
        Err(e @ SweepError::ScenarioMismatch { .. }) => {
            assert!(e.to_string().contains("scenario"), "message: {e}");
        }
        other => panic!("wrong scenario: expected ScenarioMismatch, got {other:?}"),
    }

    // Envelope phase marker disagreeing with the embedded study.
    std::fs::write(&path, good.replacen("\"phase\":\"Setup\"", "\"phase\":\"Finished\"", 1))
        .unwrap();
    match checkpoint::load(&path, &sc) {
        Err(SweepError::Corrupt { detail, .. }) => {
            assert!(detail.contains("Finished"), "detail: {detail}");
        }
        other => panic!("phase mismatch: expected Corrupt, got {other:?}"),
    }

    // Missing file.
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(checkpoint::load(&path, &sc), Err(SweepError::Io { .. })));

    std::fs::remove_dir_all(&dir).ok();
}
