//! End-to-end sweep behaviour: completed seeds are skipped on relaunch,
//! partial seeds resume from their latest checkpoint, a killed `sweep`
//! process is recoverable with `sweep resume`, and the aggregate report
//! shows real cross-seed variance.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use footsteps_core::{Phase, Scenario};
use footsteps_sweep::aggregate::aggregate;
use footsteps_sweep::checkpoint;
use footsteps_sweep::manifest::{JobStatus, Manifest};
use footsteps_sweep::scheduler::{
    latency_path, manifest_path, read_latency, read_results, results_path, resume_sweep,
    run_sweep, trace_path, SweepConfig,
};

fn quick(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.worker_threads = 1;
    s
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("footsteps-sweep-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn sweep_completes_skips_done_seeds_and_resumes_partial_ones() {
    let dir = tmp_dir("e2e");
    let cfg = SweepConfig {
        dir: dir.clone(),
        variants: vec![("quick".into(), quick(1))],
        seeds: vec![1, 2],
        workers: 2,
    };

    let out = run_sweep(&cfg).expect("initial sweep");
    assert_eq!((out.ran, out.skipped), (2, 0));
    assert!(out.manifest.all_done());
    let d1 = out.manifest.job("quick", 1).unwrap().digest.expect("seed 1 digest");
    let d2 = out.manifest.job("quick", 2).unwrap().digest.expect("seed 2 digest");
    assert_ne!(d1, d2, "different seeds must produce different results");

    // The per-seed results file round-trips to the digest the manifest
    // recorded (float formatting is parse-stable).
    let r1 = read_results(&results_path(&dir, "quick", 1)).expect("read seed 1 results");
    assert_eq!(r1.digest(), d1);

    // Every executed job left a Chrome trace next to its checkpoints,
    // and the trace passes the exporter's schema check.
    for seed in [1, 2] {
        let tpath = trace_path(&dir, "quick", seed);
        let body = std::fs::read_to_string(&tpath)
            .unwrap_or_else(|e| panic!("per-job trace {tpath:?}: {e}"));
        footsteps_obs::export::validate_chrome_trace(&body)
            .unwrap_or_else(|e| panic!("per-job trace {tpath:?} invalid: {e}"));
    }

    // Relaunching the identical sweep is a no-op.
    let again = run_sweep(&cfg).expect("relaunch");
    assert_eq!((again.ran, again.skipped), (0, 2));

    // Fabricate the state a kill after seed 2's narrow phase would leave:
    // status Running, digest not yet re-recorded, later checkpoints gone.
    let mpath = manifest_path(&dir);
    let mut m = Manifest::load(&mpath).expect("load manifest");
    {
        let job = m.job_mut("quick", 2);
        job.status = JobStatus::Running;
        job.digest = None;
        job.phase = Phase::NarrowDone;
    }
    m.save(&mpath).expect("save manifest");
    for phase in [Phase::BroadDone, Phase::Finished] {
        std::fs::remove_file(checkpoint::path_for(&dir, "quick", 2, phase)).expect("drop ckpt");
    }

    let before = std::fs::read(results_path(&dir, "quick", 1)).expect("seed 1 bytes");
    let resumed = resume_sweep(&dir, 2).expect("resume");
    assert_eq!((resumed.ran, resumed.skipped), (1, 1));
    assert!(resumed.manifest.all_done());
    // The digest came back from the results file, not a recompute, and
    // matches the original run exactly.
    assert_eq!(resumed.manifest.job("quick", 2).unwrap().digest, Some(d2));
    // The completed seed was not touched.
    assert_eq!(std::fs::read(results_path(&dir, "quick", 1)).unwrap(), before);

    // Aggregate across both seeds: nonzero cross-seed variance in the
    // Table 5 counts, error bars in the render.
    let r2 = read_results(&results_path(&dir, "quick", 2)).expect("read seed 2 results");
    // Every characterized job also wrote its detection-latency report
    // (the scheduler attaches the streaming detector to fresh jobs).
    let lat1 = read_latency(&latency_path(&dir, "quick", 1)).expect("seed 1 latency report");
    let lat2 = read_latency(&latency_path(&dir, "quick", 2)).expect("seed 2 latency report");
    let report = aggregate(&[r1, r2], &[], &[lat1, lat2]);
    let (nonzero, total) = report.nonzero_variance_cells();
    assert!(nonzero > 0, "expected cross-seed variance, got 0 of {total} cells");
    let text = report.render();
    assert!(text.contains("±"));
    assert!(text.contains(&format!("{d1:#018x}")));
    if !report.latency.is_empty() {
        assert!(text.contains("Detection latency"), "latency table renders when rows exist");
    }

    // A conflicting configuration in the same directory is refused.
    let mut conflicting = cfg.clone();
    conflicting.seeds = vec![1, 2, 3];
    assert!(matches!(
        run_sweep(&conflicting),
        Err(footsteps_sweep::SweepError::Config(_))
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_sweep_process_resumes_to_completion() {
    let dir = tmp_dir("kill");
    let exe = env!("CARGO_BIN_EXE_sweep");
    let dir_arg = dir.to_str().expect("utf-8 temp path");

    // Start a 2-seed sweep and kill it mid-flight (single worker so the
    // kill reliably lands inside a running job).
    let mut child = Command::new(exe)
        .args(["run", "--dir", dir_arg, "--seeds", "2", "--workers", "1", "--scenario", "quick"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep run");
    std::thread::sleep(Duration::from_millis(2500));
    child.kill().ok();
    child.wait().expect("reap child");

    // The manifest survived the kill and `sweep resume` finishes the job.
    let status = Command::new(exe)
        .args(["resume", "--dir", dir_arg, "--workers", "1"])
        .stdout(Stdio::null())
        .status()
        .expect("run sweep resume");
    assert!(status.success(), "sweep resume failed after kill");

    let manifest = Manifest::load(&manifest_path(&dir)).expect("manifest after resume");
    assert!(manifest.all_done());
    let digests: Vec<u64> = manifest.jobs.iter().map(|j| j.digest.expect("digest")).collect();
    assert_eq!(digests.len(), 2);
    assert_ne!(digests[0], digests[1]);

    // Finished jobs carry valid per-job trace files even across the kill:
    // the resumed invocation rewrites the trace at each phase boundary it
    // actually ran.
    for job in &manifest.jobs {
        let tpath = trace_path(&dir, &job.variant, job.seed);
        let body = std::fs::read_to_string(&tpath)
            .unwrap_or_else(|e| panic!("per-job trace {tpath:?}: {e}"));
        footsteps_obs::export::validate_chrome_trace(&body)
            .unwrap_or_else(|e| panic!("per-job trace {tpath:?} invalid: {e}"));
    }

    // Resuming a finished sweep is a no-op, and the report renders.
    let out = Command::new(exe)
        .args(["resume", "--dir", dir_arg])
        .output()
        .expect("no-op resume");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ran 0 job(s)"), "stdout: {stdout}");

    let out = Command::new(exe)
        .args(["report", "--dir", dir_arg])
        .output()
        .expect("sweep report");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("aggregate report"), "stdout: {stdout}");
    assert!(stdout.contains("cross-seed variance"), "stdout: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
