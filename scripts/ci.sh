#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, the engine perf
# baseline, and a perf-regression check against the committed baseline,
# with warnings denied. Uses only vendored dependencies — safe to run
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--Dwarnings}"
export CARGO_NET_OFFLINE=true

echo "== build (release, -Dwarnings) =="
cargo build --release

echo "== lint (footsteps-lint determinism & safety pass) =="
# Machine-checks the determinism contract (DESIGN.md §6); findings are
# written as JSON for post-mortem even when the gate passes.
cargo run --release -q -p footsteps-lint -- --json-out /tmp/footsteps_lint.ci.json

echo "== test =="
cargo test -q

echo "== perf baseline (smoke scenario) =="
cargo run --release -p footsteps-bench --bin perf_baseline -- --json 7 /tmp/BENCH_daily_engine.ci.json

echo "== perf regression gate =="
# Fail if fresh throughput drops below TOLERANCE x the committed baseline.
BASELINE_FILE="BENCH_daily_engine.baseline.json"
FRESH_FILE="/tmp/BENCH_daily_engine.ci.json"
TOLERANCE="${FOOTSTEPS_PERF_TOLERANCE:-0.85}"

extract_days_per_sec() {
  # Accepts plain decimals and scientific notation (1234.5, 1.2345e3);
  # the old [0-9.]* pattern silently truncated "1.2e3" to "1.2".
  sed -n 's/.*"days_per_sec": *\(-\{0,1\}[0-9][0-9]*\(\.[0-9][0-9]*\)\{0,1\}\([eE][+-]\{0,1\}[0-9][0-9]*\)\{0,1\}\).*/\1/p' "$1" | head -n 1
}

# A throughput must be a finite positive number, or the gate is meaningless.
check_positive_number() {
  awk -v v="$2" 'BEGIN { exit !(v + 0 > 0) }' || {
    echo "perf gate: unparseable days_per_sec in $1 (got '$2')" >&2
    exit 1
  }
}

baseline=$(extract_days_per_sec "$BASELINE_FILE")
fresh=$(extract_days_per_sec "$FRESH_FILE")
if [ -z "$baseline" ] || [ -z "$fresh" ]; then
  echo "perf gate: could not extract days_per_sec (baseline='$baseline', fresh='$fresh')" >&2
  exit 1
fi
check_positive_number "$BASELINE_FILE" "$baseline"
check_positive_number "$FRESH_FILE" "$fresh"
echo "baseline: $baseline days/sec ($BASELINE_FILE)"
echo "fresh:    $fresh days/sec ($FRESH_FILE)"
if ! awk -v f="$fresh" -v b="$baseline" -v t="$TOLERANCE" \
    'BEGIN { exit !(f >= t * b) }'; then
  echo "perf gate: FAIL — $fresh < $TOLERANCE x $baseline days/sec" >&2
  exit 1
fi
echo "perf gate: OK ($fresh >= $TOLERANCE x $baseline days/sec)"

echo "CI OK"
