#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, and the engine perf
# baseline, with warnings denied. Uses only vendored dependencies — safe
# to run without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--Dwarnings}"
export CARGO_NET_OFFLINE=true

echo "== build (release, -Dwarnings) =="
cargo build --release

echo "== test =="
cargo test -q

echo "== perf baseline (smoke scenario) =="
cargo run --release -p footsteps-bench --bin perf_baseline -- 7 /tmp/BENCH_daily_engine.ci.json

echo "CI OK"
