#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, the engine perf
# baseline, and a perf-regression check against the committed baseline,
# with warnings denied. Uses only vendored dependencies — safe to run
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--Dwarnings}"
export CARGO_NET_OFFLINE=true

echo "== build (release, -Dwarnings) =="
cargo build --release

echo "== lint (footsteps-lint determinism & safety pass) =="
# Machine-checks the determinism contract (DESIGN.md §6); findings are
# written as JSON for post-mortem even when the gate passes, and the
# call-graph coverage stats are printed so resolution regressions are
# visible in the CI log. The interprocedural pass is also self-benched:
# the whole workspace analysis must stay under 30 s wall time or the
# lint has regressed from "free in CI" to "a build phase".
LINT_BUDGET_SECS=30
lint_start=$(date +%s)
cargo run --release -q -p footsteps-lint -- --stats --json-out /tmp/footsteps_lint.ci.json
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "lint wall time: ${lint_elapsed}s (budget ${LINT_BUDGET_SECS}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET_SECS" ]; then
  echo "lint gate: FAIL — interprocedural pass took ${lint_elapsed}s > ${LINT_BUDGET_SECS}s" >&2
  exit 1
fi

# The committed checkpoint-schema lock must match the live Deserialize
# types — a stale lint-schema.lock would let schema drift through.
cargo run --release -q -p footsteps-lint -- --schema-check

echo "== test =="
cargo test -q

echo "== sweep smoke (2-seed replication, checkpoint/resume) =="
# Two seeds of the smoke scenario on the bounded pool, then prove the
# resume path is a no-op on a finished manifest and that the aggregate
# report shows real cross-seed variance (ISSUE 4 acceptance).
SWEEP_DIR="$(mktemp -d /tmp/footsteps_sweep_ci.XXXXXX)"
trap 'rm -rf "$SWEEP_DIR"' EXIT
./target/release/sweep run --dir "$SWEEP_DIR" --seeds 2 --workers 2 --scenario smoke

# The two per-seed digests must differ — identical digests would mean
# the seeds were not actually varied.
digests=$(sed -n 's/.*"digest": \([0-9][0-9]*\).*/\1/p' "$SWEEP_DIR/manifest.json")
if [ "$(printf '%s\n' "$digests" | wc -l)" -ne 2 ]; then
  echo "sweep gate: expected 2 per-seed digests, got: $digests" >&2
  exit 1
fi
if [ "$(printf '%s\n' "$digests" | sort -u | wc -l)" -ne 2 ]; then
  echo "sweep gate: per-seed digests did not differ: $digests" >&2
  exit 1
fi

# Resuming a finished sweep must be a no-op (nothing recomputed).
resume_out=$(./target/release/sweep resume --dir "$SWEEP_DIR")
printf '%s\n' "$resume_out"
if ! printf '%s\n' "$resume_out" | grep -q "ran 0 job(s)"; then
  echo "sweep gate: resume on a finished manifest was not a no-op" >&2
  exit 1
fi

# The aggregate report must show nonzero cross-seed variance in at
# least one Table 5 count cell.
report_out=$(./target/release/sweep report --dir "$SWEEP_DIR")
printf '%s\n' "$report_out" | tail -n 3
if ! printf '%s\n' "$report_out" | grep -q "cross-seed variance: [1-9]"; then
  echo "sweep gate: no cross-seed variance in the Table 5 count cells" >&2
  exit 1
fi
# Every characterized job also wrote a detection-latency report, and the
# aggregate renders the latency table from them.
for seed in 1 2; do
  if [ ! -f "$SWEEP_DIR/latency_smoke_s$seed.json" ]; then
    echo "sweep gate: missing latency_smoke_s$seed.json (stream not attached?)" >&2
    exit 1
  fi
done
if ! printf '%s\n' "$report_out" | grep -q "Detection latency"; then
  echo "sweep gate: aggregate report lacks the detection-latency table" >&2
  exit 1
fi
echo "sweep gate: OK (2 distinct digests, no-op resume, nonzero variance, latency table)"

echo "== perf baseline (smoke scenario, 1 and 8 worker threads) =="
cargo run --release -p footsteps-bench --bin perf_baseline -- --json --threads 1 7 /tmp/BENCH_daily_engine.ci.json
cargo run --release -p footsteps-bench --bin perf_baseline -- --json --threads 8 7 /tmp/BENCH_daily_engine.ci.t8.json

echo "== perf regression gate =="
# Fail if fresh throughput drops below TOLERANCE x the committed baseline.
BASELINE_FILE="BENCH_daily_engine.baseline.json"
FRESH_FILE="/tmp/BENCH_daily_engine.ci.json"
FRESH_T8_FILE="/tmp/BENCH_daily_engine.ci.t8.json"
TOLERANCE="${FOOTSTEPS_PERF_TOLERANCE:-0.85}"

extract_days_per_sec() {
  # Accepts plain decimals and scientific notation (1234.5, 1.2345e3);
  # the old [0-9.]* pattern silently truncated "1.2e3" to "1.2".
  sed -n 's/.*"days_per_sec": *\(-\{0,1\}[0-9][0-9]*\(\.[0-9][0-9]*\)\{0,1\}\([eE][+-]\{0,1\}[0-9][0-9]*\)\{0,1\}\).*/\1/p' "$1" | head -n 1
}

extract_results_digest() {
  sed -n 's/.*"results_digest": *"\(0x[0-9a-f]*\)".*/\1/p' "$1" | head -n 1
}

# A throughput must be a finite positive number, or the gate is meaningless.
check_positive_number() {
  awk -v v="$2" 'BEGIN { exit !(v + 0 > 0) }' || {
    echo "perf gate: unparseable days_per_sec in $1 (got '$2')" >&2
    exit 1
  }
}

baseline=$(extract_days_per_sec "$BASELINE_FILE")
fresh=$(extract_days_per_sec "$FRESH_FILE")
if [ -z "$baseline" ] || [ -z "$fresh" ]; then
  echo "perf gate: could not extract days_per_sec (baseline='$baseline', fresh='$fresh')" >&2
  exit 1
fi
check_positive_number "$BASELINE_FILE" "$baseline"
check_positive_number "$FRESH_FILE" "$fresh"
echo "baseline: $baseline days/sec ($BASELINE_FILE)"
echo "fresh:    $fresh days/sec ($FRESH_FILE)"
if ! awk -v f="$fresh" -v b="$baseline" -v t="$TOLERANCE" \
    'BEGIN { exit !(f >= t * b) }'; then
  echo "perf gate: FAIL — $fresh < $TOLERANCE x $baseline days/sec" >&2
  exit 1
fi
echo "perf gate: OK ($fresh >= $TOLERANCE x $baseline days/sec)"

echo "== multi-thread gate (thread-invariant digest + throughput) =="
# The sharded apply phase must be byte-identical for any FOOTSTEPS_THREADS:
# the 8-thread results digest must equal the 1-thread digest.
digest_t1=$(extract_results_digest "$FRESH_FILE")
digest_t8=$(extract_results_digest "$FRESH_T8_FILE")
if [ -z "$digest_t1" ] || [ -z "$digest_t8" ]; then
  echo "thread gate: could not extract results_digest (t1='$digest_t1', t8='$digest_t8')" >&2
  exit 1
fi
if [ "$digest_t1" != "$digest_t8" ]; then
  echo "thread gate: FAIL — digest differs across thread counts ($digest_t1 vs $digest_t8)" >&2
  exit 1
fi

# Throughput: on a multicore host, 8 workers must not be slower than 1.
# On a single-core host 8 threads purely oversubscribe the CPU (spawn
# overhead, no parallelism), so the comparison measures nothing about
# regressions — the 1-thread baseline gate above covers those; here only
# the digest equality is enforced.
fresh_t8=$(extract_days_per_sec "$FRESH_T8_FILE")
check_positive_number "$FRESH_T8_FILE" "$fresh_t8"
cpus=$(nproc 2>/dev/null || echo 1)
if [ "$cpus" -ge 2 ]; then
  if ! awk -v t8="$fresh_t8" -v t1="$fresh" 'BEGIN { exit !(t8 >= t1) }'; then
    echo "thread gate: FAIL — 8T $fresh_t8 < 1T $fresh days/sec on $cpus cpus" >&2
    exit 1
  fi
else
  echo "thread gate: single-core host — skipping the 8T >= 1T throughput floor"
fi
echo "thread gate: OK (digest $digest_t1 invariant; 8T $fresh_t8 vs 1T $fresh days/sec on $cpus cpu(s))"

echo "== trace smoke gate (chrome-trace export + span-structure parity) =="
# Run the smoke scenario with tracing fully on: the event ring
# (FOOTSTEPS_TRACE) plus span-event collection and Chrome-trace export
# (FOOTSTEPS_TRACE_OUT). The exported trace must pass the schema check,
# and the results digest must equal the untraced 1-thread digest —
# tracing is observability-only.
TRACE_FILE="/tmp/footsteps_trace.ci.json"
TRACED_PERF="/tmp/BENCH_daily_engine.ci.traced.json"
FOOTSTEPS_TRACE=1 FOOTSTEPS_TRACE_OUT="$TRACE_FILE" \
  cargo run --release -p footsteps-bench --bin perf_baseline -- --json --threads 1 7 "$TRACED_PERF"
./target/release/obs-report --check-trace "$TRACE_FILE"
digest_traced=$(extract_results_digest "$TRACED_PERF")
if [ -z "$digest_traced" ] || [ "$digest_traced" != "$digest_t1" ]; then
  echo "trace gate: FAIL — digest with tracing on ($digest_traced) != untraced digest ($digest_t1)" >&2
  exit 1
fi

# Span-*structure* parity: names/nesting/lane kinds/region counts are a
# pure function of the serial control flow, so the structure digest in the
# perf reports must be identical for 1 and 8 worker threads.
extract_structure_digest() {
  sed -n 's/.*"structure_digest": *"\(0x[0-9a-f]*\)".*/\1/p' "$1" | head -n 1
}
struct_t1=$(extract_structure_digest "$FRESH_FILE")
struct_t8=$(extract_structure_digest "$FRESH_T8_FILE")
if [ -z "$struct_t1" ] || [ -z "$struct_t8" ]; then
  echo "trace gate: could not extract structure_digest (t1='$struct_t1', t8='$struct_t8')" >&2
  exit 1
fi
if [ "$struct_t1" != "$struct_t8" ]; then
  echo "trace gate: FAIL — span structure differs across thread counts ($struct_t1 vs $struct_t8)" >&2
  exit 1
fi
echo "trace gate: OK (valid chrome trace, digest $digest_traced invariant, structure $struct_t1 parity)"

echo "== obs overhead gate (tracing on vs off) =="
# Tracing fully on must not cost more than (1 - tolerance) of engine
# throughput: traced days/sec >= tolerance x untraced days/sec on the
# same host, same scenario, back to back.
OBS_TOLERANCE="${FOOTSTEPS_OBS_TOLERANCE:-0.90}"
fresh_traced=$(extract_days_per_sec "$TRACED_PERF")
check_positive_number "$TRACED_PERF" "$fresh_traced"
if ! awk -v on="$fresh_traced" -v off="$fresh" -v t="$OBS_TOLERANCE" \
    'BEGIN { exit !(on >= t * off) }'; then
  echo "obs overhead gate: FAIL — traced $fresh_traced < $OBS_TOLERANCE x untraced $fresh days/sec" >&2
  exit 1
fi
echo "obs overhead gate: OK (traced $fresh_traced >= $OBS_TOLERANCE x untraced $fresh days/sec)"

echo "== stream gate (event-log record, offline replay, verdict parity) =="
# Record the smoke scenario's platform event log while detecting online
# (perf_baseline --stream runs the detector with the recorder off then
# on, and itself asserts those two digests match), then replay the log
# offline: stream-replay must recompute the identical verdict digest
# from the file alone, and the versioned envelope must round-trip.
STREAM_LOG="/tmp/footsteps_stream.ci.jsonl"
STREAM_PERF="/tmp/BENCH_stream.ci.json"
cargo run --release -p footsteps-bench --bin perf_baseline -- --json --stream "$STREAM_LOG" 7 "$STREAM_PERF"
inline_digest=$(sed -n 's/.*"verdict_digest": *"\(0x[0-9a-f]*\)".*/\1/p' "$STREAM_PERF" | head -n 1)
if [ -z "$inline_digest" ]; then
  echo "stream gate: could not extract verdict_digest from $STREAM_PERF" >&2
  exit 1
fi
replay_out=$(./target/release/stream-replay "$STREAM_LOG")
replay_digest=$(printf '%s\n' "$replay_out" | sed -n 's/^verdict_digest: *\(0x[0-9a-f]*\).*/\1/p')
if [ -z "$replay_digest" ] || [ "$replay_digest" != "$inline_digest" ]; then
  echo "stream gate: FAIL — replayed digest '$replay_digest' != inline '$inline_digest'" >&2
  exit 1
fi
if ! printf '%s\n' "$replay_out" | grep -q "^schema_version: 1$"; then
  echo "stream gate: FAIL — replay did not round-trip envelope schema v1" >&2
  printf '%s\n' "$replay_out" >&2
  exit 1
fi
echo "stream gate: OK (verdict digest $replay_digest reproduced from the recorded log)"

echo "CI OK"
