//! Integration-test crate for the `footsteps` workspace.
//!
//! The library itself is empty; all content lives in `tests/` (the Cargo
//! integration-test directory of this member crate), where each file
//! exercises flows that span multiple workspace crates.

#![forbid(unsafe_code)]
