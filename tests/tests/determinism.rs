//! Reproducibility contract: a `(Scenario, seed)` pair determines every
//! measurement bit-for-bit, and different seeds genuinely differ.

use footsteps_core::{results, Scenario, Study};

fn fingerprint(seed: u64) -> String {
    let mut study = Study::new(Scenario::smoke(seed));
    study.run_characterization();
    let t6 = results::table6(&study);
    let t8 = results::table8(&study);
    let t9 = results::table9(&study);
    let counts: Vec<String> = t6
        .iter()
        .map(|r| format!("{}:{}:{}", r.group, r.customers, r.long_term))
        .collect();
    format!(
        "{} | rev {:?} | truth {:?} | hubla {:?}",
        counts.join(","),
        t8.rows.iter().map(|r| r.revenue_cents).collect::<Vec<_>>(),
        t8.truth_cents,
        t9.estimate.monthly_tier_accounts,
    )
}

#[test]
fn same_seed_reproduces_bit_identical_results() {
    let a = fingerprint(42);
    let b = fingerprint(42);
    assert_eq!(a, b, "same scenario+seed must reproduce identical tables");
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(a, b, "different seeds must explore different worlds");
}

#[test]
fn series_are_deterministic_through_interventions() {
    let run = |seed: u64| {
        let mut study = Study::new(Scenario::smoke(seed));
        study.run_characterization();
        study.run_narrow();
        let f5 = results::figure5(&study);
        let f6 = results::figure6(&study);
        (f5.threshold, f5.block.values, f6.block.values)
    };
    assert_eq!(run(9), run(9));
}
