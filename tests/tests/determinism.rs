//! Reproducibility contract: a `(Scenario, seed)` pair determines every
//! measurement bit-for-bit, and different seeds genuinely differ.

use footsteps_core::{results, Scenario, Study};

fn fingerprint(seed: u64) -> String {
    let mut study = Study::new(Scenario::smoke(seed));
    study.run_characterization();
    let t6 = results::table6(&study);
    let t8 = results::table8(&study);
    let t9 = results::table9(&study);
    let counts: Vec<String> = t6
        .iter()
        .map(|r| format!("{}:{}:{}", r.group, r.customers, r.long_term))
        .collect();
    format!(
        "{} | rev {:?} | truth {:?} | hubla {:?}",
        counts.join(","),
        t8.rows.iter().map(|r| r.revenue_cents).collect::<Vec<_>>(),
        t8.truth_cents,
        t9.estimate.monthly_tier_accounts,
    )
}

#[test]
fn same_seed_reproduces_bit_identical_results() {
    let a = fingerprint(42);
    let b = fingerprint(42);
    assert_eq!(a, b, "same scenario+seed must reproduce identical tables");
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(a, b, "different seeds must explore different worlds");
}

/// Run the smoke scenario with a given decision-phase worker count and
/// collect the full serializable results aggregate.
fn results_with_threads(seed: u64, threads: usize) -> results::StudyResults {
    let mut scenario = Scenario::smoke(seed);
    scenario.worker_threads = threads;
    let mut study = Study::new(scenario);
    study.run_characterization();
    results::StudyResults::collect(&study)
}

#[test]
fn results_are_byte_identical_across_worker_threads() {
    // The two-phase engine's contract: the decision phase may shard across
    // any number of workers, the serialized study results do not change.
    let one = results_with_threads(7, 1);
    let two = results_with_threads(7, 2);
    let eight = results_with_threads(7, 8);
    let json = one.to_json();
    assert_eq!(json, two.to_json(), "1 vs 2 worker threads");
    assert_eq!(json, eight.to_json(), "1 vs 8 worker threads");
}

#[test]
fn smoke_results_match_recorded_digest() {
    // Golden digest of the default smoke seed. A mismatch means the
    // simulation's randomness or result serialization changed — regenerate
    // deliberately (print `results_with_threads(7, 1).digest()`) and record
    // the behaviour change in CHANGES.md.
    let digest = results_with_threads(7, 1).digest();
    assert_eq!(
        digest, GOLDEN_SMOKE_DIGEST,
        "smoke results drifted from the recorded golden digest: got {digest:#x}"
    );
}

/// FNV-1a digest of `StudyResults::to_json()` for `Scenario::smoke(7)`.
const GOLDEN_SMOKE_DIGEST: u64 = 0xce8a_eb34_fb9f_e096;

#[test]
fn metrics_snapshot_is_byte_identical_across_worker_threads() {
    // The obs layer rides the same two-phase contract: counters are
    // recorded on the serial apply path or from the merged (roster-order)
    // plan list, never per worker, so the snapshot JSON cannot depend on
    // the shard count.
    let one = results_with_threads(7, 1).metrics.expect("metrics collected");
    let two = results_with_threads(7, 2).metrics.expect("metrics collected");
    let eight = results_with_threads(7, 8).metrics.expect("metrics collected");
    let json = one.to_json();
    assert!(json.contains("platform.outbound.delivered"), "snapshot is non-trivial");
    assert_eq!(json, two.to_json(), "1 vs 2 worker threads");
    assert_eq!(json, eight.to_json(), "1 vs 8 worker threads");
}

#[test]
fn golden_digest_is_independent_of_tracing() {
    // Tracing (and the rest of the obs layer) must never leak into the
    // deterministic study results: run the same study with the event ring
    // force-enabled and check the digest against the recorded golden value.
    let mut scenario = Scenario::smoke(7);
    scenario.worker_threads = 1;
    let mut study = Study::new(scenario);
    // Set the ring directly rather than via FOOTSTEPS_TRACE — env vars are
    // process-global and would race with other tests in this binary.
    study.platform.obs.trace = footsteps_obs::Trace::enabled_with(1024);
    study.run_characterization();
    let results = results::StudyResults::collect(&study);
    assert_eq!(
        results.digest(),
        GOLDEN_SMOKE_DIGEST,
        "enabling the obs trace ring changed the deterministic results"
    );
    // Continue into the narrow intervention (where enforcement actually
    // fires) purely to confirm the ring captures events when enabled.
    study.run_narrow();
    let trace = study.platform.obs.trace.snapshot();
    assert!(
        !trace.events.is_empty(),
        "the enabled ring should have captured enforcement/bin events"
    );
}

/// Run the smoke scenario to completion with span-event collection fully
/// on (the `FOOTSTEPS_TRACE_OUT` code path, enabled via the direct API
/// because env vars are process-global and race across tests) and return
/// the study.
fn traced_study_with_threads(seed: u64, threads: usize) -> Study {
    let mut scenario = Scenario::smoke(seed);
    scenario.worker_threads = threads;
    let mut study = Study::new(scenario);
    study.platform.obs.timings.enable_events();
    study.run_to_completion();
    study
}

#[test]
fn golden_digest_is_independent_of_span_event_collection() {
    // The Chrome-trace exporter's event log must be observability-only:
    // collecting B/E events for every span and exporting the trace.json
    // cannot change a byte of the deterministic results. The golden digest
    // is defined at the characterization boundary, so collect there, then
    // continue to completion for the export.
    let mut scenario = Scenario::smoke(7);
    scenario.worker_threads = 1;
    let mut study = Study::new(scenario);
    study.platform.obs.timings.enable_events();
    study.run_characterization();
    let results = results::StudyResults::collect(&study);
    assert_eq!(
        results.digest(),
        GOLDEN_SMOKE_DIGEST,
        "span-event collection changed the deterministic results"
    );
    study.run_narrow();
    study.run_broad();
    study.run_epilogue();
    // And the collected event log actually exports as a valid trace.
    let dir = std::env::temp_dir().join("footsteps_determinism_trace");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("smoke_trace.json");
    study.platform.obs.export_trace_to(&path).expect("trace exports");
    let body = std::fs::read_to_string(&path).expect("trace file readable");
    footsteps_obs::export::validate_chrome_trace(&body).expect("exported trace validates");
    std::fs::remove_file(&path).ok();
}

#[test]
fn span_structure_is_byte_identical_across_worker_threads() {
    // The span tree's deterministic view: names, nesting, lane kinds and
    // region counts are a pure function of the serial control flow, so the
    // structure JSON (and its digest) cannot depend on FOOTSTEPS_THREADS.
    // Durations stay quarantined in the wall-clock sidecar.
    let one = traced_study_with_threads(7, 1);
    let two = traced_study_with_threads(7, 2);
    let eight = traced_study_with_threads(7, 8);
    let json = one.platform.obs.timings.structure().to_json();
    assert!(json.contains("phase.characterization"), "structure is non-trivial");
    assert!(json.contains("aas."), "structure reaches the service engines");
    assert_eq!(
        json,
        two.platform.obs.timings.structure().to_json(),
        "1 vs 2 worker threads"
    );
    assert_eq!(
        json,
        eight.platform.obs.timings.structure().to_json(),
        "1 vs 8 worker threads"
    );
    assert_eq!(
        one.platform.obs.timings.structure_digest(),
        eight.platform.obs.timings.structure_digest()
    );
}

#[test]
fn series_are_deterministic_through_interventions() {
    let run = |seed: u64| {
        let mut study = Study::new(Scenario::smoke(seed));
        study.run_characterization();
        study.run_narrow();
        let f5 = results::figure5(&study);
        let f6 = results::figure6(&study);
        (f5.threshold, f5.block.values, f6.block.values)
    };
    assert_eq!(run(9), run(9));
}
