//! One smoke study through every phase, with the paper's headline findings
//! asserted along the way. This is the repository's end-to-end smoke test.

use footsteps_core::{results, Phase, Scenario, Study};
use footsteps_detect::score_group;
use footsteps_honeypot::{baseline_inbound, observed_trial_days, unrequested_action_types};
use footsteps_sim::prelude::*;

#[test]
fn full_study_end_to_end() {
    let mut study = Study::new(Scenario::smoke(21));
    study.run_characterization();
    let end = study.timeline.narrow_start;

    // Classifier quality is scored at the moment the pipeline is built —
    // ground truth keeps accumulating afterwards (new customers enroll
    // during the interventions), which would read as false negatives.
    for group in ServiceGroup::BUSINESS {
        let score = score_group(&study.platform, &study.pipeline().classification, group);
        assert!(score.precision() > 0.98, "{group} precision {}", score.precision());
        assert!(score.recall() > 0.9, "{group} recall {}", score.recall());
    }

    study.run_narrow();
    study.run_broad();
    study.run_epilogue();
    assert_eq!(study.phase, Phase::Finished);

    // --- §4: honeypot methodology -----------------------------------------
    assert_eq!(
        baseline_inbound(&study.framework, &study.platform, Day(0), end),
        0,
        "inactive baseline accounts must see zero activity"
    );
    assert!(
        unrequested_action_types(&study.framework, &study.platform, Day(0), end).is_empty(),
        "services only perform requested action types"
    );
    assert_eq!(
        observed_trial_days(&study.framework, &study.platform, ServiceId::Instazood, end),
        Some(7),
        "Instazood delivers 7 trial days despite advertising 3"
    );
    assert_eq!(
        observed_trial_days(&study.framework, &study.platform, ServiceId::Boostgram, end),
        Some(3)
    );

    // --- §5: business characterization ---------------------------------------
    let t6 = results::table6(&study);
    let hubla = t6.iter().find(|r| r.group == ServiceGroup::Hublaagram).unwrap();
    let insta = t6.iter().find(|r| r.group == ServiceGroup::InstaStar).unwrap();
    // Paper ratio is ~8.3x (1.01M vs 121.7k); scale noise gives headroom.
    assert!(
        hubla.customers > 5 * insta.customers,
        "Hublaagram dwarfs the paid services ({} vs {})",
        hubla.customers,
        insta.customers
    );
    assert!(hubla.long_term_share() > insta.long_term_share());

    // Table 5 shape: follows reciprocate an order of magnitude above likes,
    // and follow→like reciprocation is zero.
    let t5 = results::table5(&study);
    let like_rows: Vec<_> = t5.iter().filter(|r| r.outbound == ActionType::Like).collect();
    let follow_rows: Vec<_> = t5.iter().filter(|r| r.outbound == ActionType::Follow).collect();
    assert!(!like_rows.is_empty() && !follow_rows.is_empty());
    let mean_like: f64 = like_rows.iter().map(|r| r.cell.like_rate()).sum::<f64>()
        / like_rows.len() as f64;
    let mean_follow: f64 = follow_rows.iter().map(|r| r.cell.follow_rate()).sum::<f64>()
        / follow_rows.len() as f64;
    assert!(mean_follow > 3.0 * mean_like, "{mean_follow} vs {mean_like}");
    assert!(follow_rows.iter().all(|r| r.cell.inbound_likes == 0));

    // Revenue: the estimator brackets/approaches the ledger truth.
    let t8 = results::table8(&study);
    let boost_est = t8.rows[0].revenue_cents as f64;
    let boost_truth = t8.truth_cents.0 as f64;
    assert!(boost_truth > 0.0);
    // At the smoke scenario's compressed 24-day window the estimator's
    // block-rounding (min purchase = 30 days) overshoots relative to the
    // renewals that happen to land inside the window; at the default
    // 90-day scenario estimate and truth agree within a few percent
    // (see EXPERIMENTS.md).
    assert!(
        (0.4..=3.0).contains(&(boost_est / boost_truth)),
        "estimate {boost_est} vs truth {boost_truth}"
    );
    // Table 10: at smoke scale the revenue window covers the entire
    // history, so "preexisting" payers cannot exist; just verify the
    // shares are well-formed. (The repeat-customers-dominate finding is
    // asserted at full scale in EXPERIMENTS.md and in the analysis unit
    // tests.)
    for row in results::table10(&study) {
        let total = row.estimate.new_share + row.estimate.preexisting_share;
        assert!((total - 1.0).abs() < 1e-9, "{}: {:?}", row.group, row.estimate);
    }

    // Figures 3/4: targeting bias.
    assert!(results::figures34(&study).bias_holds());

    // --- §6: interventions ---------------------------------------------------
    let f7 = results::figure7(&study);
    let delay_week = f7.treated.mean_over(study.timeline.broad_start, f7.switch_day);
    let block_week = f7.treated.mean_over(f7.switch_day, study.timeline.epilogue_start);
    assert!(
        block_week < 0.5 * delay_week,
        "blocking provokes adaptation ({block_week}) while delay does not ({delay_week})"
    );

    // --- epilogue --------------------------------------------------------------
    let ep = results::epilogue(&study);
    assert!(ep.insta_follows_back_home || !ep.insta_likes_on_proxy,
        "if likes never migrated, follows trivially remain home");
}
