//! Property-based tests over the core data structures and invariants.

use footsteps_aas::{Payment, PaymentKind, PaymentLedger};
use footsteps_analysis::Ecdf;
use footsteps_sim::actions::{ActionOutcome, ActionType, TypeCounts};
use footsteps_sim::behavior::{followback_tendency, sample_binomial, synthesize_profile, BehaviorParams};
use footsteps_sim::ratelimit::{CooldownLimiter, FixedWindowLimiter};
use footsteps_sim::rng::stable_bin;
use footsteps_sim::time::{Day, SimTime};
use footsteps_sim::prelude::{AccountId, ServiceId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn any_outcome() -> impl Strategy<Value = ActionOutcome> {
    prop_oneof![
        Just(ActionOutcome::Delivered),
        Just(ActionOutcome::Blocked),
        Just(ActionOutcome::DeferredRemoval),
        Just(ActionOutcome::RateLimited),
    ]
}

fn any_action() -> impl Strategy<Value = ActionType> {
    prop_oneof![
        Just(ActionType::Like),
        Just(ActionType::Follow),
        Just(ActionType::Comment),
        Just(ActionType::Post),
        Just(ActionType::Unfollow),
    ]
}

proptest! {
    /// Every attempt lands in exactly one outcome bucket, under any sequence
    /// of recordings and merges.
    #[test]
    fn type_counts_stay_consistent(
        ops in prop::collection::vec((any_action(), any_outcome(), 0u32..500), 0..60),
        split in 0usize..60,
    ) {
        let mut a = TypeCounts::default();
        let mut b = TypeCounts::default();
        for (i, (ty, outcome, n)) in ops.iter().enumerate() {
            let target = if i < split { &mut a } else { &mut b };
            target.record(*ty, *outcome, *n);
        }
        prop_assert!(a.is_consistent());
        prop_assert!(b.is_consistent());
        a.merge(&b);
        prop_assert!(a.is_consistent());
        let total: u64 = ops.iter().map(|(_, _, n)| u64::from(*n)).sum();
        prop_assert_eq!(u64::from(a.total_attempted()), total);
    }

    /// The fixed-window limiter never grants more than its limit per window,
    /// regardless of request pattern.
    #[test]
    fn fixed_window_never_exceeds_limit(
        limit in 1u32..200,
        requests in prop::collection::vec((0u64..7_200, 1u32..300), 1..50),
    ) {
        let mut limiter = FixedWindowLimiter::new(limit, 3_600);
        let key = AccountId(1);
        let mut sorted = requests.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut granted_per_window = std::collections::HashMap::new();
        for (t, n) in sorted {
            let granted = limiter.acquire(&key, SimTime(t), n);
            *granted_per_window.entry(t / 3_600).or_insert(0u64) += u64::from(granted);
        }
        for (&w, &granted) in &granted_per_window {
            prop_assert!(granted <= u64::from(limit), "window {w}: {granted} > {limit}");
        }
    }

    /// A cooldown limiter's successful acquisitions are spaced by at least
    /// the cooldown.
    #[test]
    fn cooldown_spacing_holds(
        cooldown in 1u64..5_000,
        times in prop::collection::vec(0u64..100_000, 1..80),
    ) {
        let mut limiter = CooldownLimiter::new(cooldown);
        let key = AccountId(7);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut granted = Vec::new();
        for t in sorted {
            if limiter.try_acquire(&key, SimTime(t)) {
                granted.push(t);
            }
        }
        for w in granted.windows(2) {
            prop_assert!(w[1] - w[0] >= cooldown, "{} then {}", w[0], w[1]);
        }
    }

    /// Binomial samples are always within [0, n] and deterministic per seed.
    #[test]
    fn binomial_bounds_and_determinism(n in 0u32..200_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        let ka = sample_binomial(&mut a, n, p);
        let kb = sample_binomial(&mut b, n, p);
        prop_assert!(ka <= n);
        prop_assert_eq!(ka, kb);
    }

    /// Synthesized reciprocity profiles are valid probabilities for any
    /// tendency/quirk input.
    #[test]
    fn profiles_always_valid(tendency in 0.0f64..=1.0, quirk in 0.0f64..1.0) {
        let profile = synthesize_profile(&BehaviorParams::default(), tendency, quirk);
        prop_assert!(profile.is_valid());
    }

    /// Followback tendency is bounded and monotone in the degree ratio.
    #[test]
    fn tendency_bounded(following in 0u32..1_000_000, followers in 0u32..1_000_000, noise in 0.0f64..1.0) {
        let t = followback_tendency(following, followers, noise);
        prop_assert!((0.0..=1.0).contains(&t));
        // Adding followers (keeping following fixed) never increases tendency.
        let t2 = followback_tendency(following, followers.saturating_add(10_000), noise);
        prop_assert!(t2 <= t + 1e-9);
    }

    /// Bin assignment is total, stable and in-range.
    #[test]
    fn stable_bin_total(key in any::<u64>(), bins in 1u32..64) {
        let b = stable_bin(key, bins);
        prop_assert!(b < bins);
        prop_assert_eq!(b, stable_bin(key, bins));
    }

    /// The ECDF is a valid CDF: within [0,1], monotone, 1 at the max.
    #[test]
    fn ecdf_is_a_cdf(values in prop::collection::vec(0u32..100_000, 1..300)) {
        let max = *values.iter().max().unwrap();
        let e = Ecdf::new(values.clone());
        let mut prev = 0.0;
        for x in [0u32, 1, 10, 100, 1_000, 10_000, 100_000] {
            let p = e.cdf(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev);
            prev = p;
        }
        prop_assert_eq!(e.cdf(max), 1.0);
        // Quantiles are members of the sample.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            prop_assert!(values.contains(&e.quantile(q)));
        }
    }

    /// Ledger revenue splits: new + preexisting always equals the window's
    /// gross (ads excluded), for any payment history.
    #[test]
    fn ledger_split_adds_up(
        payments in prop::collection::vec((0u32..90, 0u32..30, 1u64..10_000), 0..120),
    ) {
        let mut ledger = PaymentLedger::new();
        for (day, account, cents) in &payments {
            ledger.record(Payment {
                day: Day(*day),
                account: AccountId(*account),
                service: ServiceId::Boostgram,
                cents: *cents,
                kind: PaymentKind::Subscription,
            });
        }
        let (new, pre) = ledger.new_vs_preexisting(ServiceId::Boostgram, Day(30), Day(60));
        let gross = ledger.gross_in(ServiceId::Boostgram, Day(30), Day(60));
        prop_assert_eq!(new + pre, gross);
    }
}
