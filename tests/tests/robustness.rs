//! Robustness checks: the paper's qualitative findings must hold across
//! seeds (no single-seed luck), and the Followersgratis exclusion premise
//! must emerge from the substrate's baseline defenses.

use footsteps_analysis::customer_base;
use footsteps_core::{results, Scenario, Study};
use footsteps_sim::prelude::*;

/// Key shape findings hold for several seeds of the smoke scenario.
#[test]
fn headline_shapes_hold_across_seeds() {
    for seed in [3, 17, 101] {
        let mut study = Study::new(Scenario::smoke(seed));
        study.run_characterization();
        study.run_narrow();
        study.run_broad();

        // Long-term shares sit in plausible bands for every seed.
        let class = results::business_classification(&study);
        for group in ServiceGroup::BUSINESS {
            let row = customer_base(&class, group);
            // Boostgram is tiny at 1/500 scale (paper: 12k customers).
            let floor = if group == ServiceGroup::Boostgram { 8 } else { 50 };
            assert!(row.customers > floor, "seed {seed} {group}: {row:?}");
            assert!(
                (0.15..=0.75).contains(&row.long_term_share()),
                "seed {seed} {group}: LT share {}",
                row.long_term_share()
            );
        }

        // The block/delay asymmetry (the paper's core claim) is seed-proof.
        let f7 = results::figure7(&study);
        let delay_week = f7.treated.mean_over(study.timeline.broad_start, f7.switch_day);
        let block_week = f7
            .treated
            .mean_over(f7.switch_day, study.timeline.epilogue_start);
        assert!(
            block_week < 0.6 * delay_week,
            "seed {seed}: block {block_week} vs delay {delay_week}"
        );

        // Targeting bias holds for every seed.
        assert!(results::figures34(&study).bias_holds(), "seed {seed}");
    }
}

/// §5's premise for excluding Followersgratis: its traffic comes from a
/// handful of addresses, so once its membership reaches real volume, the
/// platform's *pre-existing* IP-volume defense (not the experimental
/// countermeasures) blocks most of it — while an otherwise-identical
/// service with a large address pool sails through.
#[test]
fn followersgratis_is_neutered_by_the_ip_volume_defense() {
    use footsteps_aas::{presets, CollusionService, PaymentLedger};
    use footsteps_sim::net::{AsnKind, AsnRegistry};
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut reg = AsnRegistry::new();
    for c in Country::ALL {
        reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
    }
    // The defining difference: one tiny block, one huge one.
    let fg_asn = reg.register("fg-host", Country::Id, AsnKind::Hosting, 256);
    let big_asn = reg.register("big-host", Country::Gb, AsnKind::Hosting, 40_000);
    let residential = ResidentialIndex::build(&reg);
    let mut platform = Platform::new(
        reg,
        PlatformConfig::default(),
        SmallRng::seed_from_u64(50),
    );
    let mut rng = SmallRng::seed_from_u64(51);
    let _pop = synthesize(
        &mut platform.accounts,
        &residential,
        &PopulationConfig { size: 2_000, ..PopulationConfig::default() },
        &mut rng,
    );
    let mk = |ip_pool: u32, asn: AsnId, seed: u64| {
        let mut cfg = presets::followersgratis_config(0.05);
        cfg.ip_pool_size = ip_pool;
        cfg.lifecycle.arrival_rate = 10.0;
        cfg.lifecycle.initial_long_term = 150;
        CollusionService::new(cfg, vec![asn], SmallRng::seed_from_u64(seed))
    };
    let mut fg = mk(3, fg_asn, 52);
    let mut big = mk(4_000, big_asn, 53);
    let mut ledger = PaymentLedger::new();
    platform.begin_day(Day(0));
    fg.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
    big.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
    for d in 0..10u32 {
        platform.begin_day(Day(d));
        fg.run_day(&mut platform, &residential, &mut ledger, Day(d));
        big.run_day(&mut platform, &residential, &mut ledger, Day(d));
    }

    let blocked_ratio = |asn: AsnId, platform: &Platform| {
        let mut attempted = 0u64;
        let mut blocked = 0u64;
        for (_, log) in platform.log.iter_range(Day(0), Day(10)) {
            for (key, counts) in log.outbound() {
                if key.asn == asn {
                    attempted += u64::from(counts.total_attempted());
                    blocked += u64::from(
                        ActionType::ALL
                            .iter()
                            .map(|&t| counts.blocked_of(t))
                            .sum::<u32>(),
                    );
                }
            }
        }
        assert!(attempted > 0, "{asn}: no traffic");
        blocked as f64 / attempted as f64
    };
    let fg_ratio = blocked_ratio(fg_asn, &platform);
    let big_ratio = blocked_ratio(big_asn, &platform);
    assert!(
        fg_ratio > 0.3,
        "the 3-IP service loses much of its volume to the edge: {fg_ratio}"
    );
    assert!(
        big_ratio < 0.05,
        "the large-pool service is untouched: {big_ratio}"
    );
    // The blocks are the edge defense's, not experimental countermeasures.
    let edge_blocked: u64 = (0..10u32)
        .map(|d| u64::from(platform.metrics(Day(d)).edge_blocked))
        .sum();
    assert!(edge_blocked > 0);
}
