//! Streaming detection contract (DESIGN.md §8): attaching the recorder
//! never moves the golden digest, record→replay reproduces the inline
//! verdicts byte for byte at any worker-thread count, and the online
//! verdicts agree with the batch classifier at the end of the window.

use footsteps_core::{results, Scenario, Study};
use std::path::PathBuf;

/// FNV-1a digest of `StudyResults::to_json()` for `Scenario::smoke(7)` —
/// the same golden value `determinism.rs` pins for the plain run.
const GOLDEN_SMOKE_DIGEST: u64 = 0xce8a_eb34_fb9f_e096;

fn tmp_log(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("footsteps_stream_it_{}_{name}.jsonl", std::process::id()));
    p
}

/// Characterize smoke(7) with the stream attached (recording when `log`
/// is given), returning the study.
fn characterized_with_stream(seed: u64, threads: usize, log: Option<&PathBuf>) -> Study {
    let mut scenario = Scenario::smoke(seed);
    scenario.worker_threads = threads;
    let mut study = Study::new(scenario);
    study
        .attach_stream(log.map(|p| p.as_path()))
        .expect("stream attaches");
    study.run_characterization();
    study
}

#[test]
fn golden_digest_is_unchanged_with_recorder_attached() {
    let log = tmp_log("golden");
    let study = characterized_with_stream(7, 1, Some(&log));
    let digest = results::StudyResults::collect(&study).digest();
    assert_eq!(
        digest, GOLDEN_SMOKE_DIGEST,
        "attaching the stream recorder must not move the golden digest"
    );
    assert!(study.stream.is_some(), "outcome frozen at characterization");
    std::fs::remove_file(&log).unwrap();
}

#[test]
fn record_then_replay_reproduces_verdicts_at_any_thread_count() {
    let mut digests = Vec::new();
    for threads in [1usize, 8] {
        let log = tmp_log(&format!("replay_t{threads}"));
        let study = characterized_with_stream(7, threads, Some(&log));
        let inline = study.stream.as_ref().expect("inline outcome");
        assert_eq!(inline.log_path.as_deref(), Some(log.as_path()));

        let replayed = footsteps_stream::replay(&log).expect("replay succeeds");
        assert_eq!(
            replayed.verdict_digest, inline.verdict_digest,
            "replay must reproduce the inline verdicts byte for byte ({threads} threads)"
        );
        assert_eq!(replayed.batches, inline.batches);
        assert_eq!(replayed.events_processed, inline.events_processed);
        assert_eq!(
            replayed.verdicts.to_json(),
            inline.verdicts.to_json(),
            "digest equality must reflect snapshot equality"
        );
        digests.push(inline.verdict_digest);
        std::fs::remove_file(&log).unwrap();
    }
    assert_eq!(
        digests[0], digests[1],
        "verdicts must be identical for 1 and 8 worker threads"
    );
}

#[test]
fn online_and_batch_verdicts_agree_at_end_of_window() {
    let study = characterized_with_stream(7, 1, None);
    let outcome = study.stream.as_ref().expect("outcome");
    let online = &outcome.verdicts;
    let batch = study.pipeline();

    // Signatures converge exactly: honeypots enroll on day 0 and the
    // services drive them from their full infrastructure within the
    // window, so the incremental sets reach the batch sets.
    assert_eq!(online.signatures.len(), batch.signatures.len());
    for view in &online.signatures {
        let sig = batch
            .signature_of(view.service)
            .expect("batch learned the same services");
        let batch_asns: Vec<_> = sig.asns.iter().copied().collect();
        let mut batch_fps: Vec<_> = sig.fingerprints.iter().copied().collect();
        batch_fps.sort_unstable();
        assert_eq!(view.asns, batch_asns, "{} asns", view.service);
        assert_eq!(view.fingerprints, batch_fps, "{} fingerprints", view.service);
        assert_eq!(view.collusion, sig.collusion);
    }

    // Online classification is a subset of batch (the online detector
    // cannot match days before a signature element was learned)...
    let mut online_only = 0usize;
    let mut batch_only = 0usize;
    for (service, accounts) in &online.classification.customers {
        let batch_set = &batch.classification.customers[service];
        online_only += accounts.difference(batch_set).count();
    }
    for (service, accounts) in &batch.classification.customers {
        let empty = std::collections::BTreeSet::new();
        let online_set = online
            .classification
            .customers
            .get(service)
            .unwrap_or(&empty);
        batch_only += accounts.difference(online_set).count();
    }
    assert_eq!(online_only, 0, "online verdicts must be a subset of batch");
    // ... and on smoke(7) the gap is pinned at zero: every batch customer
    // is still active after the signatures converge, so the online
    // detector catches all of them by the end of the window. If this pin
    // moves, document the new deviation here and in DESIGN.md §8.
    assert_eq!(batch_only, 0, "no batch-only customers on smoke(7)");

    // Thresholds: same table, built from the same calibration window with
    // the same classification (batch_only == 0 makes the is_abusive
    // filters identical).
    let online_table = online.threshold_table();
    assert_eq!(online_table.len(), batch.thresholds.len());
    for (&(asn, ty, direction), &v) in batch.thresholds.iter() {
        assert_eq!(
            online_table.get(asn, ty, direction),
            Some(v),
            "threshold for ({asn:?}, {ty:?}, {direction:?})"
        );
    }
    for (&asn, &kind) in batch.thresholds.asn_kinds.iter() {
        let online_kind = online
            .asn_kinds
            .iter()
            .find(|&&(a, _)| a == asn)
            .map(|&(_, k)| k);
        assert_eq!(online_kind, Some(kind), "asn kind for {asn:?}");
    }

    // Latency: with full agreement the per-service latency is finite and
    // the report covers every service the batch classifier attributed.
    let latency = study.detection_latency().expect("latency report");
    assert_eq!(
        latency.rows.len(),
        batch.classification.customers.len(),
        "one latency row per service with verdicts"
    );
    for row in &latency.rows {
        assert_eq!(row.score.fp, 0, "{}: online-only accounts", row.service);
        assert_eq!(row.score.fn_, 0, "{}: batch-only accounts", row.service);
        assert!(row.mean_days >= 0.0);
        assert!(u64::from(row.max_days) <= 90, "{}: latency bounded by window", row.service);
    }
}
