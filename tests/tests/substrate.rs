//! Cross-crate substrate scenarios: enforcement lifecycles and accounting
//! invariants exercised through the public APIs of several crates at once.

use footsteps_detect::ThresholdTable;
use footsteps_intervene::{BinAssignment, BinPolicy, ExperimentPolicy};
use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
use footsteps_sim::enforcement::Direction;
use footsteps_sim::net::{AsnKind, AsnRegistry};
use footsteps_sim::platform::{BatchRequest, Platform, PlatformConfig, PoolStats};
use footsteps_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn platform() -> (Platform, AsnId, AsnId) {
    let mut reg = AsnRegistry::new();
    let res = reg.register("res", Country::Us, AsnKind::Residential, 10_000);
    let host = reg.register("host", Country::Us, AsnKind::Hosting, 10_000);
    (
        Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1)),
        res,
        host,
    )
}

fn organic(p: &mut Platform, res: AsnId) -> AccountId {
    p.accounts.create(
        SimTime::EPOCH,
        ProfileKind::Organic,
        Country::Us,
        res,
        100,
        100,
        ReciprocityProfile::SILENT,
    )
}

/// An account in a given intervention bin (found by scanning ids).
fn account_in_bin(p: &mut Platform, res: AsnId, bin: u32) -> AccountId {
    loop {
        let a = organic(p, res);
        if footsteps_intervene::bin_of(a) == bin {
            return a;
        }
    }
}

#[test]
fn experiment_policy_drives_platform_outcomes_end_to_end() {
    let (mut p, res, host) = platform();
    let mut thresholds = ThresholdTable::default();
    thresholds.set(host, ActionType::Follow, Direction::Outbound, 25);
    let blocked = account_in_bin(&mut p, res, 0);
    let delayed = account_in_bin(&mut p, res, 1);
    let control = account_in_bin(&mut p, res, 2);
    p.set_policy(Box::new(ExperimentPolicy::new(
        thresholds,
        BinAssignment::narrow(0, 1, 2),
    )));
    p.begin_day(Day(0));
    let req = |actor| BatchRequest {
        actor,
        action: ActionType::Follow,
        count: 100,
        asn: host,
        ip: IpAddr4(0x0100_0000 + 10_000),
        fingerprint: ClientFingerprint::SpoofedMobile { variant: 9 },
        pool: PoolStats::INERT,
        service: Some(ServiceId::Boostgram),
    };
    let rb = p.submit_batch(req(blocked));
    let rd = p.submit_batch(req(delayed));
    let rc = p.submit_batch(req(control));
    // Blocked: 25 pass, 75 visibly fail.
    assert_eq!((rb.delivered, rb.blocked, rb.deferred), (25, 75, 0));
    // Delayed: everything visibly succeeds, 75 deferred.
    assert_eq!((rd.delivered, rd.deferred, rd.blocked), (25, 75, 0));
    assert_eq!(rd.visible_success(), 100);
    // Control: untouched.
    assert_eq!(rc.delivered, 100);
    // Overnight, the deferred follows vanish — only for the delay account.
    assert_eq!(p.accounts.get(delayed).following, 200);
    p.begin_day(Day(1));
    assert_eq!(p.accounts.get(delayed).following, 125);
    assert_eq!(p.accounts.get(blocked).following, 125);
    assert_eq!(p.accounts.get(control).following, 200);
    assert_eq!(p.metrics(Day(1)).removed_follows, 75);
}

#[test]
fn inbound_enforcement_is_independent_of_outbound() {
    let (mut p, res, host) = platform();
    let mut thresholds = ThresholdTable::default();
    thresholds.set(host, ActionType::Like, Direction::Inbound, 40);
    let recipient = account_in_bin(&mut p, res, 0); // treated bin
    p.set_policy(Box::new(ExperimentPolicy::new(
        thresholds,
        BinAssignment::broad(2, BinPolicy::Block),
    )));
    p.begin_day(Day(0));
    // Outbound likes from the same account via the same ASN are NOT
    // thresholded (the table entry is inbound-only).
    let out = p.submit_batch(BatchRequest {
        actor: recipient,
        action: ActionType::Like,
        count: 100,
        asn: host,
        ip: IpAddr4(0x0100_0000 + 10_001),
        fingerprint: ClientFingerprint::SpoofedMobile { variant: 4 },
        pool: PoolStats::INERT,
        service: Some(ServiceId::Hublaagram),
    });
    assert_eq!(out.delivered, 100);
    // Inbound deliveries above 40 are blocked.
    let dep = p.deposit_inbound_enforced(
        recipient,
        ActionType::Like,
        100,
        host,
        Some(ServiceId::Hublaagram),
        None,
    );
    assert_eq!(dep.delivered, 40);
    assert_eq!(dep.blocked, 60);
    // A second deposit the same day is fully blocked (prior counted).
    let dep2 = p.deposit_inbound_enforced(
        recipient,
        ActionType::Like,
        50,
        host,
        Some(ServiceId::Hublaagram),
        None,
    );
    assert_eq!(dep2.delivered, 0);
    assert_eq!(dep2.blocked, 50);
}

#[test]
fn organic_reciprocation_survives_countermeasures_on_control() {
    let (mut p, res, host) = platform();
    let a = organic(&mut p, res);
    p.begin_day(Day(0));
    let pool = PoolStats { like_for_like: 0.0, follow_for_like: 0.0, follow_for_follow: 0.3 };
    p.submit_batch(BatchRequest {
        actor: a,
        action: ActionType::Follow,
        count: 1_000,
        asn: host,
        ip: IpAddr4(0x0100_0000 + 10_002),
        fingerprint: ClientFingerprint::SpoofedMobile { variant: 3 },
        pool,
        service: Some(ServiceId::Boostgram),
    });
    for d in 1..8u32 {
        p.begin_day(Day(d));
    }
    let inbound = p.log.total_inbound(a, ActionType::Follow, Day(0), Day(8));
    // Expected ≈ 1000 × 0.3 × quality^0.25(=1 for organic) = ~300.
    assert!((150..450).contains(&(inbound as i64)), "inbound {inbound}");
    assert_eq!(u64::from(p.accounts.get(a).followers), 100 + inbound);
}
