//! Offline vendored `criterion` work-alike.
//!
//! Implements the API slice the workspace's benches use (`bench_function`,
//! `benchmark_group`/`bench_with_input`, the `criterion_group!`/
//! `criterion_main!` macros) with a plain wall-clock harness: warm up once,
//! run `sample_size` timed samples, report min/median/mean per iteration.
//! No plotting, no statistics beyond that — enough to compare hot paths
//! across commits in an offline environment.

use std::time::{Duration, Instant};

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks (named variants over inputs).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibrate the per-sample iteration count so each sample takes a
    // measurable (~20ms) slice without dragging out slow benches.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = if once >= target {
        1
    } else {
        (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
    };

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {id:<48} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        sample_size,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
