//! Offline vendored `proptest` work-alike.
//!
//! Supports the strategy surface this workspace's property tests use —
//! integer/float ranges, `any::<T>()`, `Just`, tuples, `prop_oneof!`,
//! `prop::collection::vec` — driven by a fixed-seed RNG for a configurable
//! number of cases (256 by default, `PROPTEST_CASES` to override). There is
//! no shrinking: failures report the failing case's seed and iteration
//! instead, which is reproducible because sampling is deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// A source of sampled values.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain distribution.
pub trait Arbitrary {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
);

/// Type-erased strategy, used by `prop_oneof!`.
pub struct Union<T> {
    pub choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].sample(rng)
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` of `element` samples with a length drawn from `range`.
    pub fn vec<S: Strategy>(element: S, range: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(range.start < range.end, "empty length range");
        VecStrategy { element, min: range.start, max: range.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 256).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

pub mod prelude {
    pub use crate::{any, cases, Arbitrary, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

pub use prelude::prop;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union { choices: vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+] }
    };
}

/// Run each property body over `cases()` sampled inputs with a fixed seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let mut __rng = <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(
                    0x7061_7065_7270_7473 ^ $crate::fnv(stringify!($name)),
                );
                for __case in 0..$crate::cases() {
                    $(let $arg = ($strategy).sample(&mut __rng);)+
                    let __run = || -> () { $body };
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                    if let Err(e) = __result {
                        eprintln!(
                            "property `{}` failed on case {} (deterministic seed; rerun reproduces)",
                            stringify!($name), __case
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// FNV-1a over a label, used to give each property its own RNG stream.
pub fn fnv(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0.25f64..=0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0u8..=255, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
        }

        #[test]
        fn oneof_samples_all_choices(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1u8 || v == 2u8);
        }
    }
}
