//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no reachable crates-io registry, so the
//! workspace ships the slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`), and
//! [`rngs::SmallRng`] implemented as xoshiro256++ with SplitMix64
//! `seed_from_u64` — the same algorithm real `rand` 0.8 uses on 64-bit
//! targets, so seeded streams are stable if the real crate is ever swapped
//! back in.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (identical to
    /// `rand_core` 0.6's default, so streams match the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod distr {
    use super::RngCore;

    /// Types samplable uniformly from an RNG (the `Standard` distribution).
    pub trait Standard: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Standard for bool {
        /// Most-significant bit of a `u32` draw, as real `rand` 0.8 does
        /// (the low bits of some generators have weaker equidistribution).
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & (1 << 31) != 0
        }
    }
    impl Standard for f64 {
        /// 53 uniform mantissa bits in `[0, 1)`, as real `rand` 0.8 does.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            let scale = 1.0 / ((1u64 << 53) as f64);
            (rng.next_u64() >> 11) as f64 * scale
        }
    }
    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            let scale = 1.0 / ((1u32 << 24) as f32);
            (rng.next_u32() >> 8) as f32 * scale
        }
    }

    /// Ranges usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Widening multiply, the core of `rand` 0.8's Lemire-style uniform
    /// integer sampler.
    trait WideMul: Copy {
        fn wmul(self, rhs: Self) -> (Self, Self);
    }
    impl WideMul for u32 {
        fn wmul(self, rhs: u32) -> (u32, u32) {
            let t = u64::from(self) * u64::from(rhs);
            ((t >> 32) as u32, t as u32)
        }
    }
    impl WideMul for u64 {
        fn wmul(self, rhs: u64) -> (u64, u64) {
            let t = u128::from(self) * u128::from(rhs);
            ((t >> 64) as u64, t as u64)
        }
    }

    // Integer ranges reproduce `rand` 0.8.5's `sample_single_inclusive`
    // exactly — same zone computation, same widening-multiply rejection,
    // same draw width ($u_large: u32 for types up to 32 bits, u64 above) —
    // so seeded streams match the real crate draw for draw.
    macro_rules! int_range {
        ($($ty:ty, $unsigned:ty, $u_large:ty, $next:ident);* $(;)?) => {$(
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    (self.start..=self.end - 1).sample_from(rng)
                }
            }
            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (low, high) = (*self.start(), *self.end());
                    assert!(low <= high, "cannot sample empty range");
                    let range =
                        high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                    if range == 0 {
                        // Wrapped around: the range is the full domain.
                        return rng.$next() as $ty;
                    }
                    let zone = if (<$unsigned>::MAX as u64) <= u64::from(u16::MAX) {
                        // Small types: an exact modulus is cheap in 32 bits.
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        // Conservative power-of-two approximation.
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v = rng.$next() as $u_large;
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        )*};
    }
    int_range!(
        u8, u8, u32, next_u32;
        u16, u16, u32, next_u32;
        u32, u32, u32, next_u32;
        u64, u64, u64, next_u64;
        usize, usize, u64, next_u64;
        i8, u8, u32, next_u32;
        i16, u16, u32, next_u32;
        i32, u32, u32, next_u32;
        i64, u64, u64, next_u64;
        isize, usize, u64, next_u64;
    );

    // Float ranges reproduce `rand` 0.8.5's `UniformFloat`: one draw mapped
    // through the [1, 2) mantissa trick, with a retry loop for the
    // measure-zero rounding cases at the top of the range.
    macro_rules! float_range {
        ($($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_one:expr, $next:ident);* $(;)?) => {$(
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let scale = self.end - self.start;
                    let offset = self.start - scale;
                    loop {
                        let value1_2 =
                            <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exp_one);
                        let res = value1_2 * scale + offset;
                        if res < self.end {
                            return res;
                        }
                    }
                }
            }
            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (low, high) = (*self.start(), *self.end());
                    assert!(low <= high, "cannot sample empty range");
                    let max_rand =
                        <$ty>::from_bits((<$uty>::MAX >> $bits_to_discard) | $exp_one) - 1.0;
                    let scale = (high - low) / max_rand;
                    loop {
                        let value0_1 =
                            <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exp_one)
                                - 1.0;
                        let res = value0_1 * scale + low;
                        if res <= high {
                            return res;
                        }
                    }
                }
            }
        )*};
    }
    float_range!(
        f32, u32, 9u32, 0x3f80_0000u32, next_u32;
        f64, u64, 12u64, 0x3ff0_0000_0000_0000u64, next_u64;
    );
}

pub use distr::{SampleRange, Standard};

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`. Matches `rand` 0.8's
    /// `Bernoulli`: one `u64` draw compared against `p` scaled to 2^64.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's `SmallRng` on
    /// 64-bit targets. Fast, 32-byte state, not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of ++ output have weaker equidistribution.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl serde::Serialize for SmallRng {
        fn to_value(&self) -> serde::Value {
            serde::Value::Seq(self.s.iter().map(|&w| serde::Value::U64(w)).collect())
        }
    }

    impl serde::Deserialize for SmallRng {
        fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
            let s = <[u64; 4]>::from_value(v)
                .map_err(|e| serde::Error::custom(format!("SmallRng state: {e}")))?;
            if s == [0; 4] {
                // An all-zero state is a fixed point no seeded constructor can
                // produce; a checkpoint claiming it is corrupt.
                return Err(serde::Error::custom("SmallRng state is all-zero"));
            }
            Ok(Self { s })
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; real rand avoids it
            // the same way (seed expansion never produces it, but guard the
            // raw-seed path).
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn seeded_streams_are_reproducible_and_distinct() {
            let mut a = SmallRng::seed_from_u64(7);
            let mut b = SmallRng::seed_from_u64(7);
            let mut c = SmallRng::seed_from_u64(8);
            let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
            assert_eq!(xs, ys);
            assert_ne!(xs, zs);
        }

        #[test]
        fn f64_samples_are_unit_interval() {
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..1000 {
                let x: f64 = rng.gen();
                assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn gen_range_stays_in_bounds() {
            let mut rng = SmallRng::seed_from_u64(2);
            for _ in 0..1000 {
                let x = rng.gen_range(10u32..20);
                assert!((10..20).contains(&x));
                let y = rng.gen_range(5u64..=5);
                assert_eq!(y, 5);
                let z = rng.gen_range(-3i32..=3);
                assert!((-3..=3).contains(&z));
            }
        }

        #[test]
        fn gen_range_is_roughly_uniform() {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut counts = [0u32; 10];
            for _ in 0..10_000 {
                counts[rng.gen_range(0usize..10)] += 1;
            }
            for &c in &counts {
                assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
            }
        }
    }
}
