//! Offline vendored `serde` work-alike.
//!
//! The real registry is unreachable from the build environment, so this
//! crate provides the derive-based (de)serialization surface the workspace
//! uses, built around an explicit [`Value`] tree instead of serde's visitor
//! architecture. `serde_json` renders and parses that tree.
//!
//! Determinism guarantee: hash-based containers (`HashMap`, `HashSet`)
//! serialize in **sorted key order**, so serialized output never depends on
//! hash-iteration order.

pub use serde_derive::{Deserialize, Serialize};

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

/// A self-describing serialized value (JSON data model plus i64/u64 split).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key-value pairs in serialization order. Struct fields keep declaration
    /// order; maps are emitted pre-sorted by key.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Total order over values, used to sort hash-container contents.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::U64(_) | Value::I64(_) | Value::F64(_) => 2,
                Value::Str(_) => 3,
                Value::Seq(_) => 4,
                Value::Map(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                num_key(a).partial_cmp(&num_key(b)).unwrap_or(Ordering::Equal)
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => cmp_seq(a, b),
            (Value::Map(a), Value::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b) {
                    let o = ka.total_cmp(kb).then_with(|| va.total_cmp(vb));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Look up a struct field / string-keyed map entry.
    pub fn get_field<'a>(&'a self, name: &str) -> Option<&'a Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find_map(|(k, v)| match k {
                Value::Str(s) if s == name => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

fn cmp_seq(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        let o = x.total_cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

fn num_key(v: &Value) -> f64 {
    match v {
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        Value::F64(x) => *x,
        _ => f64::NAN,
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn expected(what: &str, got: &Value) -> Error {
    Error(format!("expected {what}, got {}", got.type_name()))
}

// ---- primitives -----------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => i128::from(*n),
                    Value::I64(n) => i128::from(*n),
                    other => return Err(expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => i128::from(*n),
                    Value::I64(n) => i128::from(*n),
                    other => return Err(expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range")))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v)?
            .try_into()
            .map_err(|_| Error("usize out of range".into()))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v)?
            .try_into()
            .map_err(|_| Error("isize out of range".into()))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` fields serialize fine but cannot be reconstructed from
/// owned parse output; deriving `Deserialize` on a struct containing one
/// stays legal, and the error surfaces only if such a value is actually
/// deserialized.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Err(expected("owned string (cannot deserialize into &'static str)", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---- references and containers -------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let xs = Vec::<T>::from_value(v)?;
        let len = xs.len();
        xs.try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(xs) => {
                        let expected_len = [$($idx),+].len();
                        if xs.len() != expected_len {
                            return Err(Error(format!(
                                "expected tuple of length {expected_len}, got {}", xs.len()
                            )));
                        }
                        Ok(($($name::from_value(&xs[$idx])?,)+))
                    }
                    other => Err(expected("tuple sequence", other)),
                }
            }
        }
    )+};
}
ser_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Deserialize one map key, tolerating the type erasure JSON rendering
/// introduces: object keys always parse back as strings (so a `u64`-keyed
/// map comes back with `Str("42")` keys), and structured keys survive only
/// inside the array-of-pairs form. On a direct failure, a string key is
/// re-tried as the number it spells.
fn map_key<K: Deserialize>(k: &Value) -> Result<K, Error> {
    match K::from_value(k) {
        Ok(key) => Ok(key),
        Err(e) => {
            if let Value::Str(s) = k {
                if let Ok(n) = s.parse::<u64>() {
                    return K::from_value(&Value::U64(n));
                }
                if let Ok(n) = s.parse::<i64>() {
                    return K::from_value(&Value::I64(n));
                }
            }
            Err(e)
        }
    }
}

/// Extract `(key, value)` pairs from either map representation: a
/// [`Value::Map`], or the `[[k, v], …]` sequence that structured-key maps
/// become after a JSON round-trip.
fn map_pairs<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(pairs) => pairs
            .iter()
            .map(|(k, val)| Ok((map_key(k)?, V::from_value(val)?)))
            .collect(),
        Value::Seq(items)
            if items
                .iter()
                .all(|i| matches!(i, Value::Seq(p) if p.len() == 2)) =>
        {
            items
                .iter()
                .map(|item| {
                    let Value::Seq(p) = item else { unreachable!("matched above") };
                    Ok((map_key(&p[0])?, V::from_value(&p[1])?))
                })
                .collect()
        }
        other => Err(expected("map", other)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        Value::Map(pairs)
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_pairs::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(Value::total_cmp);
        Value::Seq(items)
    }
}
impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(expected("sequence", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_containers_serialize_sorted() {
        let mut m = HashMap::new();
        for k in [9u32, 1, 5, 3] {
            m.insert(k, k * 10);
        }
        let Value::Map(pairs) = m.to_value() else { panic!("map expected") };
        let keys: Vec<u64> = pairs
            .iter()
            .map(|(k, _)| match k {
                Value::U64(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let x: Option<(u32, String)> = Some((7, "hi".into()));
        let v = x.to_value();
        let back = Option::<(u32, String)>::from_value(&v).unwrap();
        assert_eq!(back, x);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1u32, 2, 3];
        let back = <[u32; 3]>::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        assert!(<[u32; 4]>::from_value(&a.to_value()).is_err());
    }
}
