//! `#[derive(Serialize, Deserialize)]` for the vendored serde work-alike.
//!
//! Implemented directly on `proc_macro` token streams (syn/quote are not
//! available offline). Supports the shapes this workspace uses:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default`-filled on deserialize);
//! * tuple structs (single-field newtypes serialize transparently);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * type generics with inline bounds (e.g. `struct Foo<K: Eq + Hash>`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---- model ----------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct { arity: usize },
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Original generic parameter list, verbatim (without outer `<>`).
    generics_decl: String,
    /// Just the parameter names, for the `for Name<...>` position and the
    /// added `where` bounds.
    params: Vec<String>,
    kind: ItemKind,
}

// ---- parsing --------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Consume a run of `#[...]` attributes; return true if any of them is
    /// `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        while self.peek_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                if attr_is_serde_skip(&g.stream()) {
                    skip = true;
                }
            }
        }
        skip
    }

    fn skip_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("derive parser: expected identifier, got {other:?}"),
        }
    }

    /// Consume a `<...>` generic parameter list if present; returns the inner
    /// tokens verbatim and the parameter names.
    fn take_generics(&mut self) -> (String, Vec<String>) {
        if !self.peek_punct('<') {
            return (String::new(), Vec::new());
        }
        self.next();
        let mut depth = 1usize;
        let mut inner: Vec<TokenTree> = Vec::new();
        let mut params = Vec::new();
        let mut expecting_param = true;
        let mut after_tick = false;
        while depth > 0 {
            let t = self.next().expect("unbalanced generics");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => expecting_param = true,
                    _ => {}
                }
                if p.as_char() == '\'' {
                    after_tick = true;
                    inner.push(t);
                    continue;
                }
            } else if let TokenTree::Ident(i) = &t {
                // Lifetime names (after `'`) and `const` are not type params.
                if depth == 1 && expecting_param && !after_tick {
                    let word = i.to_string();
                    if word != "const" {
                        params.push(word);
                        expecting_param = false;
                    }
                }
            }
            after_tick = false;
            inner.push(t);
        }
        let decl = tokens_to_string(&inner);
        (decl, params)
    }

    /// Consume tokens of a type (or discriminant expression) until a
    /// top-level `,` (angle-bracket aware). The comma is consumed.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    } else if c == ',' && angle <= 0 {
                        self.next();
                        return;
                    }
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(attr: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in toks {
        s.push_str(&t.to_string());
        s.push(' ');
    }
    s
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        let skip = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive parser: expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    if c.at_end() {
        return 0;
    }
    let mut n = 0;
    while !c.at_end() {
        // Leading attrs / visibility on each tuple field.
        c.skip_attrs();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        c.skip_until_comma();
        n += 1;
    }
    n
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        c.skip_until_comma();
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    let (generics_decl, params) = c.take_generics();
    // Skip an optional `where` clause (re-derived bounds are added fresh).
    while c.peek_ident("where") {
        c.next();
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => {
                    c.next();
                }
            }
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct { arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("derive parser: unexpected struct body {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive parser: unexpected enum body {other:?}"),
        },
        other => panic!("derive supports structs and enums, got `{other}`"),
    };
    Item { name, generics_decl, params, kind }
}

// ---- rendering ------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    let mut s = String::from("#[automatically_derived]\nimpl");
    if !item.generics_decl.is_empty() {
        s.push('<');
        s.push_str(&item.generics_decl);
        s.push('>');
    }
    s.push_str(&format!(" ::serde::{trait_name} for {}", item.name));
    if !item.params.is_empty() {
        s.push('<');
        s.push_str(&item.params.join(", "));
        s.push('>');
    }
    if !item.params.is_empty() {
        let bounds: Vec<String> = item
            .params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        s.push_str(&format!(" where {}", bounds.join(", ")));
    }
    s
}

fn render_serialize(item: &Item) -> String {
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__pairs.push((::serde::Value::Str(::std::string::String::from(\"{n}\")), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __pairs: ::std::vec::Vec<(::serde::Value, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__pairs)"
            )
        }
        ItemKind::TupleStruct { arity: 1 } => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        ItemKind::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({}) => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from(\"{vn}\")), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::serde::Value::Str(::std::string::String::from(\"{n}\")), \
                                     ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "Self::{vn} {{ {pat} }} => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from(\"{vn}\")), \
                             ::serde::Value::Map(::std::vec![{items}]))]),\n",
                            pat = pat.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        header = impl_header(item, "Serialize")
    )
}

fn named_fields_constructor(type_label: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
        } else {
            inits.push_str(&format!(
                "{n}: match ::serde::Value::get_field({source}, \"{n}\") {{\n\
                 ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"missing field `{n}` in {type_label}\")),\n}},\n",
                n = f.name
            ));
        }
    }
    inits
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            format!(
                "::std::result::Result::Ok(Self {{\n{}}})",
                named_fields_constructor(name, fields, "__v")
            )
        }
        ItemKind::TupleStruct { arity: 1 } => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        ItemKind::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Seq(__xs) if __xs.len() == {arity} => \
                 ::std::result::Result::Ok(Self({items})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected sequence of length {arity} for {name}\")),\n}}",
                items = items.join(", ")
            )
        }
        ItemKind::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                             ::serde::Value::Seq(__xs) if __xs.len() == {arity} => \
                             ::std::result::Result::Ok(Self::{vn}({items})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"bad payload for variant {vn} of {name}\")),\n}},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok(Self::{vn} {{\n{}}}),\n",
                            named_fields_constructor(name, fields, "__payload")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Map(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __payload) = &__pairs[0];\n\
                 let ::serde::Value::Str(__tag) = __tag else {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"non-string enum tag for {name}\"));\n}};\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected enum representation for {name}\")),\n}}"
            )
        }
    };
    format!(
        "{header} {{\n fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        header = impl_header(item, "Deserialize")
    )
}
