//! Offline vendored JSON front-end for the vendored `serde` work-alike.
//!
//! Renders/parses the [`serde::Value`] tree. Output is deterministic:
//! struct fields keep declaration order and hash-container contents are
//! pre-sorted by the serializer. Non-string map keys (e.g. tuple-keyed
//! maps) are rendered as an array of `[key, value]` pairs instead of a JSON
//! object, so serialization never fails.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize any `Serialize` value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

// ---- rendering ------------------------------------------------------------

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => render_f64(*x, out),
        Value::Str(s) => render_string(s, out),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(x, indent, level + 1, out);
            }
            if !xs.is_empty() {
                newline_indent(indent, level, out);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            let stringy = pairs
                .iter()
                .all(|(k, _)| matches!(k, Value::Str(_) | Value::U64(_) | Value::I64(_)));
            if stringy {
                out.push('{');
                for (i, (k, val)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(indent, level + 1, out);
                    match k {
                        Value::Str(s) => render_string(s, out),
                        Value::U64(n) => render_string(&n.to_string(), out),
                        Value::I64(n) => render_string(&n.to_string(), out),
                        _ => unreachable!(),
                    }
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(val, indent, level + 1, out);
                }
                if !pairs.is_empty() {
                    newline_indent(indent, level, out);
                }
                out.push('}');
            } else {
                // Structured keys: array-of-pairs representation.
                out.push('[');
                for (i, (k, val)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(indent, level + 1, out);
                    out.push('[');
                    render(k, indent, level + 1, out);
                    out.push(',');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(val, indent, level + 1, out);
                    out.push(']');
                }
                if !pairs.is_empty() {
                    newline_indent(indent, level, out);
                }
                out.push(']');
            }
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep floats distinguishable from integers on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; real serde_json errors, we pick null to keep
        // rendering total (and deterministic).
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            // `[[k,v],...]` pair arrays parse as Seq; the
                            // Deserialize impls for maps accept Value::Map
                            // only, so re-tag when every item is a 2-seq of
                            // a structured key. Plain sequences of pairs are
                            // indistinguishable — acceptable for this
                            // workspace, which only round-trips structs.
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    // Numeric-looking keys stay strings: struct field lookup
                    // and map deserialization both compare via Value keys,
                    // and integer-keyed maps serialize keys as strings.
                    pairs.push((Value::Str(key), val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII identifiers; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn collections_roundtrip() {
        let xs = vec![1u32, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), xs);
        let pairs: Vec<(u32, String)> = vec![(1, "a".into())];
        let json = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&json).unwrap(), pairs);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 g").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn numeric_and_structured_map_keys_roundtrip_through_text() {
        use std::collections::{BTreeMap, HashMap};
        // Numeric keys render as JSON object keys (strings) and must come
        // back as numbers.
        let mut by_id: HashMap<u32, String> = HashMap::new();
        by_id.insert(7, "seven".into());
        by_id.insert(100, "hundred".into());
        let json = to_string(&by_id).unwrap();
        assert_eq!(from_str::<HashMap<u32, String>>(&json).unwrap(), by_id);
        // Structured (tuple) keys render as `[[k, v], …]` and must come back
        // as a map.
        let mut by_pair: BTreeMap<(u32, u64), bool> = BTreeMap::new();
        by_pair.insert((1, 2), true);
        by_pair.insert((3, 4), false);
        let json = to_string(&by_pair).unwrap();
        assert_eq!(from_str::<BTreeMap<(u32, u64), bool>>(&json).unwrap(), by_pair);
        let empty: BTreeMap<(u32, u64), bool> = BTreeMap::new();
        assert_eq!(
            from_str::<BTreeMap<(u32, u64), bool>>(&to_string(&empty).unwrap()).unwrap(),
            empty
        );
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let xs = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), xs);
    }
}
